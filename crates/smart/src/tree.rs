//! The SMART tree: ART operations over disaggregated memory.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use parking_lot::Mutex;

use dmem::{ChunkAlloc, ClientStats, Endpoint, GlobalAddr, IndexError, Pool, RangeIndex};

use crate::node::{ArtNode, ArtOps, Child, NodeType};

const OP_RETRY_LIMIT: usize = 100_000;

/// Internal node holding a leaf's slot: (node address, node type, slot byte).
type ParentSlot = (GlobalAddr, NodeType, u8);

/// SMART configuration.
#[derive(Debug, Clone, Copy)]
pub struct SmartConfig {
    /// Value size in bytes.
    pub value_size: usize,
    /// CN cache budget in bytes.
    pub cache_bytes: u64,
}

impl Default for SmartConfig {
    fn default() -> Self {
        SmartConfig {
            value_size: 8,
            cache_bytes: 100 << 20,
        }
    }
}

struct Shared {
    pool: Arc<Pool>,
    cfg: SmartConfig,
    /// The root is a Node256 that is never replaced, so its tagged pointer
    /// is resolved once at creation (no per-op root-slot READ).
    root: (GlobalAddr, NodeType),
    ops: ArtOps,
}

/// A handle to a SMART tree.
#[derive(Clone)]
pub struct Smart {
    shared: Arc<Shared>,
}

/// An LRU cache of ART nodes under a byte budget.
struct ArtCache {
    map: HashMap<u64, (ArtNode, u64)>,
    lru: VecDeque<(u64, u64)>,
    tick: u64,
    bytes: u64,
    budget: u64,
}

impl ArtCache {
    fn new(budget: u64) -> Self {
        ArtCache {
            map: HashMap::new(),
            lru: VecDeque::new(),
            tick: 0,
            bytes: 0,
            budget,
        }
    }

    fn get(&mut self, addr: GlobalAddr) -> Option<ArtNode> {
        self.tick += 1;
        let (n, stamp) = self.map.get_mut(&addr.raw())?;
        *stamp = self.tick;
        self.lru.push_back((addr.raw(), self.tick));
        Some(n.clone())
    }

    fn insert(&mut self, n: ArtNode) {
        let key = n.addr.raw();
        let sz = n.cached_bytes();
        if sz > self.budget {
            return;
        }
        self.tick += 1;
        if let Some((old, _)) = self.map.insert(key, (n, self.tick)) {
            self.bytes -= old.cached_bytes();
        }
        self.bytes += sz;
        self.lru.push_back((key, self.tick));
        while self.bytes > self.budget {
            let Some((victim, stamp)) = self.lru.pop_front() else {
                break;
            };
            match self.map.get(&victim) {
                Some((_, cur)) if *cur != stamp => continue,
                Some(_) => {
                    let (e, _) = self.map.remove(&victim).unwrap();
                    self.bytes -= e.cached_bytes();
                }
                None => continue,
            }
        }
    }

    fn invalidate(&mut self, addr: GlobalAddr) {
        if let Some((n, _)) = self.map.remove(&addr.raw()) {
            self.bytes -= n.cached_bytes();
        }
    }
}

/// Per-CN shared state.
pub struct CnState {
    cache: Mutex<ArtCache>,
}

impl CnState {
    /// Compute-side cache footprint in bytes.
    pub fn cache_bytes(&self) -> u64 {
        self.cache.lock().bytes
    }
}

/// One SMART client.
pub struct SmartClient {
    shared: Arc<Shared>,
    cn: Arc<CnState>,
    ep: Endpoint,
    alloc: ChunkAlloc,
}

impl Smart {
    /// Creates a new empty tree rooted at well-known slot `slot`.
    pub fn create(pool: &Arc<Pool>, cfg: SmartConfig, slot: u64) -> Self {
        let ops = ArtOps {
            value_size: cfg.value_size,
        };
        let mut ep = Endpoint::new(Arc::clone(pool));
        let mut alloc = ChunkAlloc::with_defaults();
        let root_addr = alloc
            .alloc(&mut ep, NodeType::N256.size() as u64)
            .expect("pool too small");
        let tagged = ops.write_node(&mut ep, root_addr, NodeType::N256, &[], &[]);
        ep.write(dmem::root_slot(slot), &tagged.to_le_bytes());
        let shared = Arc::new(Shared {
            pool: Arc::clone(pool),
            cfg,
            root: (root_addr, NodeType::N256),
            ops,
        });
        Smart { shared }
    }

    /// Creates the shared state for one compute node.
    pub fn new_cn(&self) -> Arc<CnState> {
        Arc::new(CnState {
            cache: Mutex::new(ArtCache::new(self.shared.cfg.cache_bytes)),
        })
    }

    /// Creates a client attached to `cn`.
    pub fn client(&self, cn: &Arc<CnState>) -> SmartClient {
        SmartClient {
            shared: Arc::clone(&self.shared),
            cn: Arc::clone(cn),
            ep: Endpoint::new(Arc::clone(&self.shared.pool)),
            alloc: ChunkAlloc::sim_scaled(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &SmartConfig {
        &self.shared.cfg
    }
}

fn common_len(a: &[u8], b: &[u8]) -> usize {
    a.iter().zip(b.iter()).take_while(|(x, y)| x == y).count()
}

impl SmartClient {
    fn ops(&self) -> ArtOps {
        self.shared.ops
    }

    fn root(&mut self) -> (GlobalAddr, NodeType) {
        self.shared.root
    }

    /// Reads a node through the CN cache; `trusted` reads bypass it.
    fn read_cached(
        &mut self,
        addr: GlobalAddr,
        ty: NodeType,
        use_cache: bool,
        from_cache: &mut bool,
    ) -> ArtNode {
        if use_cache {
            if let Some(n) = self.cn.cache.lock().get(addr) {
                *from_cache = true;
                return n;
            }
        }
        *from_cache = false;
        let n = self.ops().read_node(&mut self.ep, addr, ty);
        if !n.obsolete {
            self.cn.cache.lock().insert(n.clone());
        }
        n
    }

    /// Descends to the leaf for `key`. Returns the leaf address plus the
    /// node holding its slot, or `None` when the key is absent.
    ///
    /// `use_cache = false` forces a fully remote descent (retry path).
    fn descend(
        &mut self,
        key: u64,
        use_cache: bool,
        path: &mut Vec<GlobalAddr>,
    ) -> Option<(GlobalAddr, (GlobalAddr, NodeType, u8))> {
        let kb = key.to_be_bytes();
        let (mut addr, mut ty) = self.root();
        let mut depth = 0usize;
        for _ in 0..16 {
            let mut from_cache = false;
            let node = self.read_cached(addr, ty, use_cache, &mut from_cache);
            if from_cache {
                path.push(addr);
            }
            let p = common_len(&node.prefix, &kb[depth..]);
            if p < node.prefix.len() {
                return None;
            }
            depth += node.prefix.len();
            let byte = kb[depth];
            match Child::decode(node.child(byte)) {
                Child::Empty => return None,
                Child::Leaf(l) => return Some((l, (addr, ty, byte))),
                Child::Node(a, t) => {
                    addr = a;
                    ty = t;
                    depth += 1;
                }
            }
        }
        panic!("radix descent exceeded key depth");
    }

    fn invalidate_path(&mut self, path: &[GlobalAddr]) {
        let mut c = self.cn.cache.lock();
        for a in path {
            c.invalidate(*a);
        }
    }

    /// Finds `key`'s leaf (and its value) with cache-miss retry;
    /// `None` = truly absent.
    fn find_leaf(&mut self, key: u64) -> Option<(GlobalAddr, Vec<u8>, ParentSlot)> {
        let mut path = Vec::new();
        if let Some(hit) = self.descend(key, true, &mut path) {
            let (k, v) = self.ops().read_leaf(&mut self.ep, hit.0);
            if k == key {
                return Some((hit.0, v, hit.1));
            }
        }
        if path.is_empty() {
            return None; // fully remote miss is authoritative
        }
        // The cached path may be stale: invalidate and re-descend remotely.
        self.invalidate_path(&path);
        let hit = self.descend(key, false, &mut Vec::new())?;
        let (k, v) = self.ops().read_leaf(&mut self.ep, hit.0);
        (k == key).then_some((hit.0, v, hit.1))
    }

    fn insert_impl(&mut self, key: u64, value: &[u8]) -> Result<(), IndexError> {
        assert_ne!(key, 0, "key 0 is reserved");
        let kb = key.to_be_bytes();
        let ops = self.ops();
        'restart: for attempt in 0..OP_RETRY_LIMIT {
            // Descend through the CN cache like a search; every other
            // attempt goes fully remote so stale paths cannot loop.
            let use_cache = attempt % 2 == 0;
            let mut path: Vec<GlobalAddr> = Vec::new();
            let mut parent: Option<(GlobalAddr, NodeType, u8)> = None;
            let (mut addr, mut ty) = self.root();
            let mut depth = 0usize;
            loop {
                let mut from_cache = false;
                let node = self.read_cached(addr, ty, use_cache, &mut from_cache);
                if from_cache {
                    path.push(addr);
                }
                if node.obsolete {
                    self.invalidate_path(&path);
                    self.cn.cache.lock().invalidate(addr);
                    continue 'restart;
                }
                let p = common_len(&node.prefix, &kb[depth..]);
                if p < node.prefix.len() {
                    if self.prefix_split(parent, &node, depth, p, key, value)? {
                        return Ok(());
                    }
                    self.invalidate_path(&path);
                    continue 'restart;
                }
                depth += node.prefix.len();
                let byte = kb[depth];
                match Child::decode(node.child(byte)) {
                    Child::Empty => {
                        if self.insert_into_slot(parent, addr, ty, byte, key, value)? {
                            return Ok(());
                        }
                        self.invalidate_path(&path);
                        self.cn.cache.lock().invalidate(addr);
                        continue 'restart;
                    }
                    Child::Leaf(laddr) => {
                        let (k2, _) = ops.read_leaf(&mut self.ep, laddr);
                        if k2 == key {
                            ops.update_leaf(&mut self.ep, laddr, value);
                            return Ok(());
                        }
                        if self.branch_leaf(addr, ty, byte, laddr, k2, depth, key, value)? {
                            return Ok(());
                        }
                        self.invalidate_path(&path);
                        self.cn.cache.lock().invalidate(addr);
                        continue 'restart;
                    }
                    Child::Node(a, t) => {
                        parent = Some((addr, ty, byte));
                        addr = a;
                        ty = t;
                        depth += 1;
                    }
                }
            }
        }
        panic!("smart insert retry limit for key {key}");
    }

    /// Inserts a fresh leaf into an empty slot; grows the node when full.
    /// Returns `Ok(false)` to restart the descent.
    fn insert_into_slot(
        &mut self,
        parent: Option<(GlobalAddr, NodeType, u8)>,
        addr: GlobalAddr,
        ty: NodeType,
        byte: u8,
        key: u64,
        value: &[u8],
    ) -> Result<bool, IndexError> {
        let ops = self.ops();
        // Write the leaf first: it is unreachable until the slot points at
        // it, so this hides outside the lock's critical section.
        let leaf_addr = self.alloc.alloc(&mut self.ep, ops.leaf_size() as u64)?;
        ops.write_leaf(&mut self.ep, leaf_addr, key, value);
        if !ops.lock_node(&mut self.ep, addr, ty) {
            return Ok(false);
        }
        match ops.insert_slot_locked(
            &mut self.ep,
            addr,
            ty,
            byte,
            Child::Leaf(leaf_addr).encode(),
        ) {
            crate::node::SlotOutcome::Inserted => {
                self.cn.cache.lock().invalidate(addr);
                return Ok(true);
            }
            crate::node::SlotOutcome::Occupied => return Ok(false),
            crate::node::SlotOutcome::Full => {}
        }
        // Grow: copy-on-write to the next node type (parent lock first, so
        // the lock was released by the slot attempt).
        let Some((paddr, pty, pbyte)) = parent else {
            panic!("root Node256 can never be full");
        };
        if !ops.lock_node(&mut self.ep, paddr, pty) {
            return Ok(false);
        }
        let mut pfresh = ops.read_node(&mut self.ep, paddr, pty);
        if pfresh.child(pbyte) != Child::Node(addr, ty).encode() {
            ops.unlock_node(&mut self.ep, paddr, pty);
            return Ok(false);
        }
        if !ops.lock_node(&mut self.ep, addr, ty) {
            ops.unlock_node(&mut self.ep, paddr, pty);
            return Ok(false);
        }
        let fresh = ops.read_node(&mut self.ep, addr, ty);
        if !fresh.full() || fresh.child(byte) != 0 {
            ops.unlock_node(&mut self.ep, addr, ty);
            ops.unlock_node(&mut self.ep, paddr, pty);
            return Ok(false);
        }
        let gty = ty.grown();
        let gaddr = self.alloc.alloc(&mut self.ep, gty.size() as u64)?;
        // The leaf was already written before the fast-path attempt.
        let mut kids = fresh.children.clone();
        kids.push((byte, Child::Leaf(leaf_addr).encode()));
        let tagged = ops.write_node(&mut self.ep, gaddr, gty, &fresh.prefix, &kids);
        ops.write_slot(&mut self.ep, &mut pfresh, pbyte, tagged);
        ops.retire_node(&mut self.ep, addr, ty);
        ops.unlock_node(&mut self.ep, paddr, pty);
        let mut c = self.cn.cache.lock();
        c.invalidate(addr);
        c.invalidate(paddr);
        Ok(true)
    }

    /// Replaces a diverging leaf with a Node4 holding both keys.
    #[allow(clippy::too_many_arguments)]
    fn branch_leaf(
        &mut self,
        addr: GlobalAddr,
        ty: NodeType,
        byte: u8,
        old_leaf: GlobalAddr,
        old_key: u64,
        depth: usize,
        key: u64,
        value: &[u8],
    ) -> Result<bool, IndexError> {
        let ops = self.ops();
        let kb = key.to_be_bytes();
        let ob = old_key.to_be_bytes();
        let d2 = depth + 1;
        let cl = common_len(&kb[d2..], &ob[d2..]);
        assert!(d2 + cl < 8, "distinct keys must diverge");
        if !ops.lock_node(&mut self.ep, addr, ty) {
            return Ok(false);
        }
        let mut fresh = ops.read_node(&mut self.ep, addr, ty);
        if fresh.child(byte) != Child::Leaf(old_leaf).encode() {
            ops.unlock_node(&mut self.ep, addr, ty);
            return Ok(false);
        }
        let leaf_addr = self.alloc.alloc(&mut self.ep, ops.leaf_size() as u64)?;
        ops.write_leaf(&mut self.ep, leaf_addr, key, value);
        let baddr = self.alloc.alloc(&mut self.ep, NodeType::N4.size() as u64)?;
        let mut kids = vec![
            (kb[d2 + cl], Child::Leaf(leaf_addr).encode()),
            (ob[d2 + cl], Child::Leaf(old_leaf).encode()),
        ];
        kids.sort_by_key(|e| e.0);
        let tagged = ops.write_node(&mut self.ep, baddr, NodeType::N4, &kb[d2..d2 + cl], &kids);
        ops.write_slot(&mut self.ep, &mut fresh, byte, tagged);
        ops.unlock_node(&mut self.ep, addr, ty);
        self.cn.cache.lock().invalidate(addr);
        Ok(true)
    }

    /// Splits a node's compressed path at position `p` (copy-on-write).
    fn prefix_split(
        &mut self,
        parent: Option<(GlobalAddr, NodeType, u8)>,
        node: &ArtNode,
        depth: usize,
        p: usize,
        key: u64,
        value: &[u8],
    ) -> Result<bool, IndexError> {
        let ops = self.ops();
        let kb = key.to_be_bytes();
        let (paddr, pty, pbyte) = parent.expect("root has an empty prefix");
        if !ops.lock_node(&mut self.ep, paddr, pty) {
            return Ok(false);
        }
        let mut pfresh = ops.read_node(&mut self.ep, paddr, pty);
        if pfresh.child(pbyte) != Child::Node(node.addr, node.ty).encode() {
            ops.unlock_node(&mut self.ep, paddr, pty);
            return Ok(false);
        }
        if !ops.lock_node(&mut self.ep, node.addr, node.ty) {
            ops.unlock_node(&mut self.ep, paddr, pty);
            return Ok(false);
        }
        let fresh = ops.read_node(&mut self.ep, node.addr, node.ty);
        // Copy of the old node with the prefix shortened past the split.
        let copy_addr = self.alloc.alloc(&mut self.ep, fresh.ty.size() as u64)?;
        let copy_tagged = ops.write_node(
            &mut self.ep,
            copy_addr,
            fresh.ty,
            &fresh.prefix[p + 1..],
            &fresh.children,
        );
        let leaf_addr = self.alloc.alloc(&mut self.ep, ops.leaf_size() as u64)?;
        ops.write_leaf(&mut self.ep, leaf_addr, key, value);
        let baddr = self.alloc.alloc(&mut self.ep, NodeType::N4.size() as u64)?;
        let mut kids = vec![
            (fresh.prefix[p], copy_tagged),
            (kb[depth + p], Child::Leaf(leaf_addr).encode()),
        ];
        kids.sort_by_key(|e| e.0);
        let tagged = ops.write_node(&mut self.ep, baddr, NodeType::N4, &fresh.prefix[..p], &kids);
        ops.write_slot(&mut self.ep, &mut pfresh, pbyte, tagged);
        ops.retire_node(&mut self.ep, node.addr, node.ty);
        ops.unlock_node(&mut self.ep, paddr, pty);
        let mut c = self.cn.cache.lock();
        c.invalidate(node.addr);
        c.invalidate(paddr);
        Ok(true)
    }

    /// In-order collection of leaf pointers for keys >= `start`.
    fn collect_leaves(&mut self, start: u64, want: usize) -> Vec<GlobalAddr> {
        let kb = start.to_be_bytes();
        let (raddr, rty) = self.root();
        let mut out = Vec::new();
        let mut stack: Vec<(u64, usize, Vec<u8>, bool)> = vec![(
            Child::Node(raddr, rty).encode(),
            0,
            Vec::new(),
            true, // `tight`: still on the lower-bound path
        )];
        while let Some((raw, depth, path, tight)) = stack.pop() {
            if out.len() >= want {
                break;
            }
            match Child::decode(raw) {
                Child::Empty => {}
                Child::Leaf(l) => out.push(l),
                Child::Node(a, t) => {
                    let mut from_cache = false;
                    let node = self.read_cached(a, t, true, &mut from_cache);
                    let mut tight = tight;
                    if tight {
                        // Compare the compressed path against the bound.
                        let lim = node.prefix.len().min(8 - depth);
                        match node.prefix[..lim].cmp(&kb[depth..depth + lim]) {
                            std::cmp::Ordering::Less => continue, // below range
                            std::cmp::Ordering::Greater => tight = false,
                            std::cmp::Ordering::Equal => {}
                        }
                    }
                    let d2 = depth + node.prefix.len();
                    let bound = if tight && d2 < 8 { kb[d2] } else { 0 };
                    // Push children in reverse so the smallest pops first.
                    for &(b, c) in node.children.iter().rev() {
                        if b < bound {
                            continue;
                        }
                        let child_tight = tight && b == bound;
                        let mut cp = path.clone();
                        cp.extend_from_slice(&node.prefix);
                        cp.push(b);
                        stack.push((c, d2 + 1, cp, child_tight));
                    }
                }
            }
        }
        out
    }

    fn resolve_value(&mut self, stored: Vec<u8>) -> Vec<u8> {
        stored
    }
}

impl RangeIndex for SmartClient {
    fn insert(&mut self, key: u64, value: &[u8]) -> Result<(), IndexError> {
        self.insert_impl(key, value)
    }

    fn search(&mut self, key: u64) -> Option<Vec<u8>> {
        assert_ne!(key, 0, "key 0 is reserved");
        let (_, v, _) = self.find_leaf(key)?;
        self.ep
            .note_app_bytes(self.shared.cfg.value_size as u64 + 8);
        Some(self.resolve_value(v))
    }

    fn update(&mut self, key: u64, value: &[u8]) -> Result<bool, IndexError> {
        assert_ne!(key, 0, "key 0 is reserved");
        match self.find_leaf(key) {
            Some((leaf, _, _)) => {
                self.ops().update_leaf(&mut self.ep, leaf, value);
                Ok(true)
            }
            None => Ok(false),
        }
    }

    fn delete(&mut self, key: u64) -> Result<bool, IndexError> {
        assert_ne!(key, 0, "key 0 is reserved");
        let ops = self.ops();
        for _ in 0..OP_RETRY_LIMIT {
            let Some((leaf, _, (naddr, nty, byte))) = self.find_leaf(key) else {
                return Ok(false);
            };
            if !ops.lock_node(&mut self.ep, naddr, nty) {
                continue;
            }
            let mut fresh = ops.read_node(&mut self.ep, naddr, nty);
            if fresh.child(byte) != Child::Leaf(leaf).encode() {
                ops.unlock_node(&mut self.ep, naddr, nty);
                continue;
            }
            ops.clear_slot(&mut self.ep, &mut fresh, byte);
            ops.unlock_node(&mut self.ep, naddr, nty);
            self.cn.cache.lock().invalidate(naddr);
            return Ok(true);
        }
        panic!("smart delete retry limit for key {key}");
    }

    fn scan(&mut self, start: u64, count: usize, out: &mut Vec<(u64, Vec<u8>)>) {
        assert_ne!(start, 0, "key 0 is reserved");
        if count == 0 {
            return;
        }
        // Collect a margin of leaves (keys below `start` inside the first
        // subtree get filtered after the reads).
        let leaves = self.collect_leaves(start, count + 16);
        let ops = self.ops();
        let mut collected = Vec::new();
        for chunk in leaves.chunks(16) {
            // One doorbell batch of single-KV reads per chunk.
            let mut bufs: Vec<(GlobalAddr, Vec<u8>)> = chunk
                .iter()
                .map(|a| {
                    let l = ops.leaf_layout();
                    let ps = l.phys_start(0);
                    let pe = l.phys_of(9 + self.shared.cfg.value_size - 1) + 1;
                    (a.add(ps as u64), vec![0u8; pe - ps])
                })
                .collect();
            {
                let mut reqs: Vec<(GlobalAddr, &mut [u8])> =
                    bufs.iter_mut().map(|(a, b)| (*a, &mut b[..])).collect();
                self.ep.read_batch(&mut reqs);
            }
            for (_, buf) in bufs {
                let l = ops.leaf_layout();
                let f = l.from_raw(0, 9 + self.shared.cfg.value_size, buf);
                let k = f.u64_at(1);
                if k >= start && k != 0 {
                    collected.push((k, f.copy(9, self.shared.cfg.value_size)));
                }
            }
            if collected.len() >= count {
                break;
            }
        }
        collected.sort_by_key(|&(k, _)| k);
        collected.truncate(count);
        out.extend(collected);
    }

    fn stats(&self) -> &ClientStats {
        self.ep.stats()
    }

    fn profile(&self) -> Option<&dmem::OpProfile> {
        Some(self.ep.profile())
    }

    fn clock_ns(&self) -> u64 {
        self.ep.clock_ns()
    }

    fn cache_bytes(&self) -> u64 {
        self.cn.cache_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(k: u64) -> Vec<u8> {
        k.to_le_bytes().to_vec()
    }

    fn mk() -> (Smart, SmartClient) {
        let pool = Pool::with_defaults(1, 256 << 20);
        let t = Smart::create(&pool, SmartConfig::default(), 2);
        let cn = t.new_cn();
        let c = t.client(&cn);
        (t, c)
    }

    #[test]
    fn insert_search_sequential() {
        let (_t, mut c) = mk();
        for k in 1..=3_000u64 {
            c.insert(k, &v(k)).unwrap();
        }
        for k in 1..=3_000u64 {
            assert_eq!(c.search(k), Some(v(k)), "key {k}");
        }
        assert_eq!(c.search(100_000), None);
    }

    #[test]
    fn insert_search_random_keys() {
        let (_t, mut c) = mk();
        // Hashed keys exercise prefix splits and every node type.
        let keys: Vec<u64> = (1..=3_000u64).map(dmem::hash::mix64).collect();
        for &k in &keys {
            c.insert(k, &v(k)).unwrap();
        }
        for &k in &keys {
            assert_eq!(c.search(k), Some(v(k)), "key {k:#x}");
        }
    }

    #[test]
    fn update_and_delete() {
        let (_t, mut c) = mk();
        for k in 1..=500u64 {
            c.insert(k, &v(k)).unwrap();
        }
        for k in 1..=500u64 {
            assert!(c.update(k, &v(k + 5)).unwrap());
            assert_eq!(c.search(k), Some(v(k + 5)));
        }
        assert!(!c.update(9_999, &v(0)).unwrap());
        for k in (1..=500u64).step_by(3) {
            assert!(c.delete(k).unwrap());
            assert_eq!(c.search(k), None);
        }
        assert!(!c.delete(1).unwrap());
        assert_eq!(c.search(2), Some(v(7)));
    }

    #[test]
    fn scan_ordered() {
        let (_t, mut c) = mk();
        for k in 1..=1_000u64 {
            c.insert(k * 3, &v(k)).unwrap();
        }
        let mut out = Vec::new();
        c.scan(150, 20, &mut out);
        let got: Vec<u64> = out.iter().map(|&(k, _)| k).collect();
        let want: Vec<u64> = (50..70).map(|k| k * 3).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn cache_grows_with_keys() {
        let (t, mut c) = mk();
        for k in 1..=2_000u64 {
            c.insert(dmem::hash::mix64(k), &v(k)).unwrap();
        }
        // Warm the cache with searches.
        for k in 1..=2_000u64 {
            c.search(dmem::hash::mix64(k));
        }
        let bytes = c.cache_bytes();
        // KV-discrete indexes cache far more per key than B+ trees: one
        // pointer-plus-key-byte per key at the bottom level alone.
        assert!(
            bytes > 2_000 * 9,
            "SMART cache should be large, got {bytes}"
        );
        drop(t);
    }

    #[test]
    fn read_amplification_near_one() {
        let (_t, mut c) = mk();
        for k in 1..=500u64 {
            c.insert(dmem::hash::mix64(k), &v(k)).unwrap();
        }
        // Warm cache.
        for k in 1..=500u64 {
            c.search(dmem::hash::mix64(k));
        }
        let before = c.stats().clone();
        for k in 1..=500u64 {
            assert!(c.search(dmem::hash::mix64(k)).is_some());
        }
        let d = c.stats().since(&before);
        let bytes_per_op = d.wire_bytes as f64 / 500.0;
        // One ~17 B leaf plus overheads: far below a 64-entry node fetch.
        assert!(bytes_per_op < 200.0, "bytes/op {bytes_per_op}");
    }

    #[test]
    fn concurrent_inserts_random() {
        let pool = Pool::with_defaults(1, 256 << 20);
        let t = Smart::create(&pool, SmartConfig::default(), 2);
        crossbeam::thread::scope(|s| {
            for tid in 0..4u64 {
                let t = t.clone();
                s.spawn(move |_| {
                    let cn = t.new_cn();
                    let mut c = t.client(&cn);
                    for i in 0..400u64 {
                        let k = dmem::hash::mix64(1 + i * 4 + tid);
                        c.insert(k, &v(k)).unwrap();
                    }
                });
            }
        })
        .unwrap();
        let cn = t.new_cn();
        let mut c = t.client(&cn);
        for s in 1..=1_600u64 {
            let k = dmem::hash::mix64(s);
            assert_eq!(c.search(k), Some(v(k)), "seq {s}");
        }
    }
}
