//! SMART: an adaptive-radix-tree range index on disaggregated memory
//! (OSDI'23), the KV-discrete baseline of the CHIME evaluation.
//!
//! Each leaf holds exactly one KV item at its own remote address, giving a
//! read amplification factor of ~1 — but the compute-side cache must hold
//! one pointer per key (plus the adaptive node overhead), which is the high
//! cache consumption CHIME's Fig. 14 measures.
//!
//! The implementation is a classic ART with pessimistic path compression and
//! the four adaptive node types (Node4/16/48/256), keys stored big-endian so
//! radix order equals numeric order. Structural changes replace nodes
//! copy-on-write under per-node locks (obsolete markers send racing writers
//! back to the root); 8-byte values are updated in place with a single
//! atomic-width WRITE.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod node;
pub mod tree;

pub use tree::{Smart, SmartClient, SmartConfig};
