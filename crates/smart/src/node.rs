//! ART node formats and remote operations.
//!
//! Child pointers are tagged 8-byte words: bit 63 marks a leaf, bits 62:61
//! carry the node type (so a reader knows how many bytes to fetch), and the
//! low 60 bits are the [`GlobalAddr`] (memory-node ids are limited to 12
//! bits here). Node headers and the prefix are immutable after creation —
//! structural changes build a new node and swap the parent slot — so node
//! reads need no version protocol; child slots are single 8-byte words and
//! inherit the substrate's word atomicity.
//!
//! Leaves are versioned objects `[ver | key | value]` with a lock word, so
//! large values can be updated in place under the leaf lock while readers
//! validate EVs; 8-byte values are updated with one atomic-width WRITE.

use dmem::versioned::{bump, pack_ver, Layout};
use dmem::{Endpoint, GlobalAddr};

/// Tag bit marking a leaf pointer.
const LEAF_TAG: u64 = 1 << 63;
const TYPE_SHIFT: u32 = 61;
const TYPE_MASK: u64 = 0b11 << TYPE_SHIFT;
const ADDR_MASK: u64 = (1 << 60) - 1;

/// The four adaptive node types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeType {
    /// Up to 4 children.
    N4,
    /// Up to 16 children.
    N16,
    /// Up to 48 children (256-byte index).
    N48,
    /// Direct 256-slot array.
    N256,
}

impl NodeType {
    /// Child capacity.
    pub fn capacity(self) -> usize {
        match self {
            NodeType::N4 => 4,
            NodeType::N16 => 16,
            NodeType::N48 => 48,
            NodeType::N256 => 256,
        }
    }

    /// The next larger type.
    pub fn grown(self) -> NodeType {
        match self {
            NodeType::N4 => NodeType::N16,
            NodeType::N16 => NodeType::N48,
            NodeType::N48 => NodeType::N256,
            NodeType::N256 => panic!("Node256 cannot grow"),
        }
    }

    fn code(self) -> u64 {
        match self {
            NodeType::N4 => 0,
            NodeType::N16 => 1,
            NodeType::N48 => 2,
            NodeType::N256 => 3,
        }
    }

    fn from_code(c: u64) -> NodeType {
        match c {
            0 => NodeType::N4,
            1 => NodeType::N16,
            2 => NodeType::N48,
            _ => NodeType::N256,
        }
    }

    /// Byte offset of the key array (N4/N16) or index array (N48).
    pub const KEYS_OFF: usize = 16;

    /// Byte offset of the pointer array.
    pub fn ptrs_off(self) -> usize {
        match self {
            NodeType::N4 => 24,
            NodeType::N16 => 32,
            NodeType::N48 => 272,
            NodeType::N256 => 16,
        }
    }

    /// Physical offset of the lock word.
    pub fn lock_off(self) -> usize {
        self.ptrs_off()
            + 8 * match self {
                NodeType::N256 => 256,
                t => t.capacity(),
            }
    }

    /// Total node size (including the lock word).
    pub fn size(self) -> usize {
        self.lock_off() + 8
    }
}

/// A tagged child pointer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Child {
    /// No child.
    Empty,
    /// A single-KV leaf.
    Leaf(GlobalAddr),
    /// An internal node of the given type.
    Node(GlobalAddr, NodeType),
}

impl Child {
    /// Decodes a raw slot word.
    pub fn decode(raw: u64) -> Child {
        if raw == 0 {
            Child::Empty
        } else if raw & LEAF_TAG != 0 {
            Child::Leaf(GlobalAddr::from_raw(raw & ADDR_MASK))
        } else {
            Child::Node(
                GlobalAddr::from_raw(raw & ADDR_MASK),
                NodeType::from_code((raw & TYPE_MASK) >> TYPE_SHIFT),
            )
        }
    }

    /// Encodes to a raw slot word.
    pub fn encode(self) -> u64 {
        match self {
            Child::Empty => 0,
            Child::Leaf(a) => {
                assert_eq!(a.raw() & !ADDR_MASK, 0, "mn id too large for tagging");
                a.raw() | LEAF_TAG
            }
            Child::Node(a, t) => {
                assert_eq!(a.raw() & !ADDR_MASK, 0, "mn id too large for tagging");
                a.raw() | (t.code() << TYPE_SHIFT)
            }
        }
    }
}

/// A parsed ART internal node.
#[derive(Debug, Clone)]
pub struct ArtNode {
    /// Remote address.
    pub addr: GlobalAddr,
    /// Node type.
    pub ty: NodeType,
    /// Compressed path (pessimistic, full bytes).
    pub prefix: Vec<u8>,
    /// `(key byte, raw child)` pairs, sorted by key byte.
    pub children: Vec<(u8, u64)>,
    /// Set when the node has been replaced (copy-on-write).
    pub obsolete: bool,
}

impl ArtNode {
    /// The raw child for `byte` (0 when absent).
    pub fn child(&self, byte: u8) -> u64 {
        self.children
            .binary_search_by_key(&byte, |e| e.0)
            .map(|i| self.children[i].1)
            .unwrap_or(0)
    }

    /// Whether every slot is occupied.
    pub fn full(&self) -> bool {
        self.children.len() >= self.ty.capacity()
    }

    /// Compute-side bytes when cached: the compact parsed form (header +
    /// prefix + one key byte and one 8-byte pointer per child), which is
    /// what a CN cache actually stores.
    pub fn cached_bytes(&self) -> u64 {
        24 + 9 * self.children.len() as u64
    }
}

/// Result of [`ArtOps::insert_slot_locked`]; the node lock is released on
/// every outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotOutcome {
    /// The child was installed.
    Inserted,
    /// The slot is already taken (concurrent insert won; re-descend).
    Occupied,
    /// The node is full (grow it).
    Full,
}

/// Remote ART node/leaf operations for one value size.
#[derive(Debug, Clone, Copy)]
pub struct ArtOps {
    /// Value size in bytes.
    pub value_size: usize,
}

impl ArtOps {
    /// The versioned layout of a leaf object.
    pub fn leaf_layout(&self) -> Layout {
        Layout::new(1 + 8 + self.value_size)
    }

    /// Physical leaf size (payload + lock word).
    pub fn leaf_size(&self) -> usize {
        self.leaf_layout().node_size()
    }

    /// Writes a fresh leaf.
    pub fn write_leaf(&self, ep: &mut Endpoint, addr: GlobalAddr, key: u64, value: &[u8]) {
        let mut data = vec![0u8; 9 + self.value_size];
        data[0] = pack_ver(0, 0);
        data[1..9].copy_from_slice(&key.to_le_bytes());
        data[9..9 + value.len().min(self.value_size)]
            .copy_from_slice(&value[..value.len().min(self.value_size)]);
        let (ps, phys) = self.leaf_layout().build_phys(0, &data, |_| pack_ver(0, 0));
        ep.write(addr.add(ps as u64), &phys);
    }

    /// Reads a leaf, retrying torn large-value updates.
    pub fn read_leaf(&self, ep: &mut Endpoint, addr: GlobalAddr) -> (u64, Vec<u8>) {
        let l = self.leaf_layout();
        let mut spins = 0u32;
        loop {
            spins += 1;
            if spins.is_multiple_of(64) {
                std::thread::yield_now();
            }
            assert!(spins < 1_000_000, "leaf read livelock");
            let f = l.fetch(ep, addr, 0, 9 + self.value_size);
            if f.check_nv(&[0]).is_none() || !f.check_ev(0, 9 + self.value_size) {
                continue;
            }
            let key = f.u64_at(1);
            return (key, f.copy(9, self.value_size));
        }
    }

    /// Updates a leaf value in place.
    ///
    /// Values up to 8 bytes are one atomic-width WRITE (1 RTT); larger
    /// values take the leaf lock and bump the EV (3 RTTs).
    pub fn update_leaf(&self, ep: &mut Endpoint, addr: GlobalAddr, value: &[u8]) {
        let l = self.leaf_layout();
        if self.value_size <= 8 {
            // Offset 9 in payload = physical offset 10, within line 0.
            let mut v = value.to_vec();
            v.resize(self.value_size, 0);
            ep.write(addr.add(l.phys_of(9) as u64), &v);
            return;
        }
        let lock_addr = addr.add(l.lock_offset() as u64);
        // Seeded backoff instead of the paper's bare spin: only charges
        // the virtual clock on an actual retry, so uncontended runs stay
        // byte-identical while contended retries stop convoying.
        let mut backoff = chime::backoff::Backoff::new(ep.client_id() as u64 ^ lock_addr.raw());
        while ep.masked_cas(lock_addr, 0, 1, 1, 1) & 1 != 0 {
            assert!(backoff.attempts() < 10_000_000, "leaf lock livelock");
            backoff.wait(ep);
        }
        let f = l.fetch(ep, addr, 0, 9 + self.value_size);
        let old_ev = dmem::versioned::ev(f.get(0));
        let e = bump(old_ev);
        let mut data = vec![0u8; 9 + self.value_size];
        data[0] = pack_ver(0, e);
        data[1..9].copy_from_slice(&f.copy(1, 8));
        data[9..9 + value.len().min(self.value_size)]
            .copy_from_slice(&value[..value.len().min(self.value_size)]);
        let (ps, phys) = l.build_phys(0, &data, |_| pack_ver(0, e));
        ep.write_batch(&[
            (addr.add(ps as u64), &phys),
            (lock_addr, &0u64.to_le_bytes()),
        ]);
    }

    /// Reads and parses an internal node (type known from the tagged
    /// pointer). Includes the lock word so `obsolete` is visible.
    pub fn read_node(&self, ep: &mut Endpoint, addr: GlobalAddr, ty: NodeType) -> ArtNode {
        let mut buf = vec![0u8; ty.size()];
        ep.read(addr, &mut buf);
        Self::parse(addr, ty, &buf)
    }

    fn parse(addr: GlobalAddr, ty: NodeType, buf: &[u8]) -> ArtNode {
        let plen = buf[1] as usize;
        let prefix = buf[2..2 + plen.min(8)].to_vec();
        let ptr_at = |i: usize| {
            u64::from_le_bytes(
                buf[ty.ptrs_off() + 8 * i..ty.ptrs_off() + 8 * i + 8]
                    .try_into()
                    .unwrap(),
            )
        };
        let mut children = Vec::new();
        match ty {
            NodeType::N4 | NodeType::N16 => {
                for i in 0..ty.capacity() {
                    let p = ptr_at(i);
                    if p != 0 {
                        children.push((buf[NodeType::KEYS_OFF + i], p));
                    }
                }
            }
            NodeType::N48 => {
                for b in 0..256usize {
                    let idx = buf[NodeType::KEYS_OFF + b];
                    if idx != 0 {
                        let p = ptr_at(idx as usize - 1);
                        if p != 0 {
                            children.push((b as u8, p));
                        }
                    }
                }
            }
            NodeType::N256 => {
                for b in 0..256usize {
                    let p = ptr_at(b);
                    if p != 0 {
                        children.push((b as u8, p));
                    }
                }
            }
        }
        children.sort_by_key(|e| e.0);
        let lock = u64::from_le_bytes(buf[ty.lock_off()..ty.lock_off() + 8].try_into().unwrap());
        ArtNode {
            addr,
            ty,
            prefix,
            children,
            obsolete: lock & 0b10 != 0,
        }
    }

    /// Serializes and writes a brand-new node; returns its tagged pointer.
    pub fn write_node(&self, ep: &mut Endpoint, addr: GlobalAddr, ty: NodeType, prefix: &[u8], children: &[(u8, u64)]) -> u64 {
        assert!(prefix.len() <= 8);
        assert!(children.len() <= ty.capacity());
        let mut buf = vec![0u8; ty.size()];
        buf[0] = ty.code() as u8;
        buf[1] = prefix.len() as u8;
        buf[2..2 + prefix.len()].copy_from_slice(prefix);
        match ty {
            NodeType::N4 | NodeType::N16 => {
                for (i, (b, p)) in children.iter().enumerate() {
                    buf[NodeType::KEYS_OFF + i] = *b;
                    buf[ty.ptrs_off() + 8 * i..ty.ptrs_off() + 8 * i + 8]
                        .copy_from_slice(&p.to_le_bytes());
                }
            }
            NodeType::N48 => {
                for (i, (b, p)) in children.iter().enumerate() {
                    buf[NodeType::KEYS_OFF + *b as usize] = i as u8 + 1;
                    buf[ty.ptrs_off() + 8 * i..ty.ptrs_off() + 8 * i + 8]
                        .copy_from_slice(&p.to_le_bytes());
                }
            }
            NodeType::N256 => {
                for (b, p) in children {
                    let off = ty.ptrs_off() + 8 * *b as usize;
                    buf[off..off + 8].copy_from_slice(&p.to_le_bytes());
                }
            }
        }
        ep.write(addr, &buf);
        Child::Node(addr, ty).encode()
    }

    /// Acquires the node lock (bit 0); fails fast when obsolete (bit 1).
    ///
    /// Returns `false` when the node is obsolete (caller restarts from the
    /// root).
    pub fn lock_node(&self, ep: &mut Endpoint, addr: GlobalAddr, ty: NodeType) -> bool {
        let lock_addr = addr.add(ty.lock_off() as u64);
        // Seeded backoff instead of the paper's bare spin: only charges
        // the virtual clock on an actual retry, so uncontended runs stay
        // byte-identical while contended retries stop convoying.
        let mut backoff = chime::backoff::Backoff::new(ep.client_id() as u64 ^ lock_addr.raw());
        loop {
            // chime-lint: allow(verb-protocol, mask-consistency): SMART's lock word packs lock (bit 0) and obsolete (bit 1); the 2-bit cmask is its documented protocol — see the mask-consistency rule's `smart-lock-obsolete` allowlist entry.
            let old = ep.masked_cas(lock_addr, 0, 0b11, 1, 1);
            if old & 0b10 != 0 {
                return false;
            }
            if old & 1 == 0 {
                return true;
            }
            assert!(backoff.attempts() < 10_000_000, "art node lock livelock");
            backoff.wait(ep);
        }
    }

    /// Releases the node lock.
    pub fn unlock_node(&self, ep: &mut Endpoint, addr: GlobalAddr, ty: NodeType) {
        ep.write(addr.add(ty.lock_off() as u64), &0u64.to_le_bytes());
    }

    /// Marks a locked node obsolete and releases the lock.
    pub fn retire_node(&self, ep: &mut Endpoint, addr: GlobalAddr, ty: NodeType) {
        ep.write(addr.add(ty.lock_off() as u64), &0b10u64.to_le_bytes());
    }

    /// Writes child `byte -> raw` into a locked, non-full node.
    ///
    /// `node` must be the fresh under-lock image; it is updated in place.
    pub fn write_slot(&self, ep: &mut Endpoint, node: &mut ArtNode, byte: u8, raw: u64) {
        let ty = node.ty;
        match ty {
            NodeType::N4 | NodeType::N16 => {
                if let Ok(i) = node.children.binary_search_by_key(&byte, |e| e.0) {
                    // Overwrite existing slot: find its physical index by
                    // re-deriving from order of insertion; we must locate
                    // the slot whose key byte matches remotely. Read-free:
                    // we track slots implicitly by rewriting both arrays.
                    let slot = self.locate_slot(ep, node, byte).expect("slot exists");
                    ep.write(
                        node.addr.add((ty.ptrs_off() + 8 * slot) as u64),
                        &raw.to_le_bytes(),
                    );
                    node.children[i].1 = raw;
                    return;
                }
                let slot = self.first_free_slot(ep, node);
                let key_addr = node.addr.add((NodeType::KEYS_OFF + slot) as u64);
                let ptr_addr = node.addr.add((ty.ptrs_off() + 8 * slot) as u64);
                ep.write_batch(&[(key_addr, &[byte]), (ptr_addr, &raw.to_le_bytes())]);
                node.children.push((byte, raw));
                node.children.sort_by_key(|e| e.0);
            }
            NodeType::N48 => {
                if node.children.binary_search_by_key(&byte, |e| e.0).is_ok() {
                    let slot = self.locate_slot(ep, node, byte).expect("slot exists");
                    ep.write(
                        node.addr.add((ty.ptrs_off() + 8 * slot) as u64),
                        &raw.to_le_bytes(),
                    );
                    let i = node
                        .children
                        .binary_search_by_key(&byte, |e| e.0)
                        .unwrap();
                    node.children[i].1 = raw;
                    return;
                }
                let slot = self.first_free_slot(ep, node);
                let idx_addr = node.addr.add((NodeType::KEYS_OFF + byte as usize) as u64);
                let ptr_addr = node.addr.add((ty.ptrs_off() + 8 * slot) as u64);
                ep.write_batch(&[(idx_addr, &[slot as u8 + 1]), (ptr_addr, &raw.to_le_bytes())]);
                node.children.push((byte, raw));
                node.children.sort_by_key(|e| e.0);
            }
            NodeType::N256 => {
                ep.write(
                    node.addr.add((ty.ptrs_off() + 8 * byte as usize) as u64),
                    &raw.to_le_bytes(),
                );
                match node.children.binary_search_by_key(&byte, |e| e.0) {
                    Ok(i) => {
                        if raw == 0 {
                            node.children.remove(i);
                        } else {
                            node.children[i].1 = raw;
                        }
                    }
                    Err(i) => {
                        if raw != 0 {
                            node.children.insert(i, (byte, raw));
                        }
                    }
                }
            }
        }
    }

    /// Finds the physical slot storing `byte` (N4/16/48) with one small
    /// READ of the key/index array.
    fn locate_slot(&self, ep: &mut Endpoint, node: &ArtNode, byte: u8) -> Option<usize> {
        match node.ty {
            NodeType::N4 | NodeType::N16 => {
                let cap = node.ty.capacity();
                let mut keys = vec![0u8; cap];
                ep.read(node.addr.add(NodeType::KEYS_OFF as u64), &mut keys);
                let mut ptrs = vec![0u8; 8 * cap];
                ep.read(node.addr.add(node.ty.ptrs_off() as u64), &mut ptrs);
                (0..cap).find(|&i| {
                    keys[i] == byte
                        && u64::from_le_bytes(ptrs[8 * i..8 * i + 8].try_into().unwrap()) != 0
                })
            }
            NodeType::N48 => {
                let mut idx = [0u8; 1];
                ep.read(
                    node.addr.add((NodeType::KEYS_OFF + byte as usize) as u64),
                    &mut idx,
                );
                (idx[0] != 0).then_some(idx[0] as usize - 1)
            }
            NodeType::N256 => Some(byte as usize),
        }
    }

    /// Finds a free physical slot in a locked node (N4/16/48).
    fn first_free_slot(&self, ep: &mut Endpoint, node: &ArtNode) -> usize {
        let cap = node.ty.capacity();
        assert!(node.children.len() < cap, "node full");
        let mut ptrs = vec![0u8; 8 * cap];
        ep.read(node.addr.add(node.ty.ptrs_off() as u64), &mut ptrs);
        (0..cap)
            .find(|&i| u64::from_le_bytes(ptrs[8 * i..8 * i + 8].try_into().unwrap()) == 0)
            .expect("free slot must exist")
    }

    /// One-round-trip slot insert under the node lock: reads the key/ptr
    /// arrays once, then writes the key byte, the pointer and the unlock in
    /// a single doorbell batch (SMART's lean insert path).
    pub fn insert_slot_locked(
        &self,
        ep: &mut Endpoint,
        addr: GlobalAddr,
        ty: NodeType,
        byte: u8,
        raw: u64,
    ) -> SlotOutcome {
        let body_off = NodeType::KEYS_OFF;
        let body_len = ty.lock_off() - body_off;
        let mut body = vec![0u8; body_len];
        ep.read(addr.add(body_off as u64), &mut body);
        let ptr_at = |i: usize| {
            let o = ty.ptrs_off() - body_off + 8 * i;
            u64::from_le_bytes(body[o..o + 8].try_into().unwrap())
        };
        let unlock_addr = addr.add(ty.lock_off() as u64);
        let zero = 0u64.to_le_bytes();
        let raw_b = raw.to_le_bytes();
        match ty {
            NodeType::N4 | NodeType::N16 => {
                let cap = ty.capacity();
                let mut free = None;
                #[allow(clippy::needless_range_loop)] // `i` also feeds ptr_at
                for i in 0..cap {
                    if ptr_at(i) != 0 {
                        if body[i] == byte {
                            ep.write(unlock_addr, &zero);
                            return SlotOutcome::Occupied;
                        }
                    } else if free.is_none() {
                        free = Some(i);
                    }
                }
                let Some(i) = free else {
                    ep.write(unlock_addr, &zero);
                    return SlotOutcome::Full;
                };
                ep.write_batch(&[
                    (addr.add((NodeType::KEYS_OFF + i) as u64), &[byte]),
                    (addr.add((ty.ptrs_off() + 8 * i) as u64), &raw_b),
                    (unlock_addr, &zero),
                ]);
                SlotOutcome::Inserted
            }
            NodeType::N48 => {
                if body[byte as usize] != 0 && ptr_at(body[byte as usize] as usize - 1) != 0 {
                    ep.write(unlock_addr, &zero);
                    return SlotOutcome::Occupied;
                }
                let Some(i) = (0..48).find(|&i| ptr_at(i) == 0) else {
                    ep.write(unlock_addr, &zero);
                    return SlotOutcome::Full;
                };
                ep.write_batch(&[
                    (addr.add((NodeType::KEYS_OFF + byte as usize) as u64), &[i as u8 + 1]),
                    (addr.add((ty.ptrs_off() + 8 * i) as u64), &raw_b),
                    (unlock_addr, &zero),
                ]);
                SlotOutcome::Inserted
            }
            NodeType::N256 => {
                if ptr_at(byte as usize) != 0 {
                    ep.write(unlock_addr, &zero);
                    return SlotOutcome::Occupied;
                }
                ep.write_batch(&[
                    (addr.add((ty.ptrs_off() + 8 * byte as usize) as u64), &raw_b),
                    (unlock_addr, &zero),
                ]);
                SlotOutcome::Inserted
            }
        }
    }

    /// Clears child `byte` in a locked node (delete path).
    pub fn clear_slot(&self, ep: &mut Endpoint, node: &mut ArtNode, byte: u8) {
        match node.ty {
            NodeType::N4 | NodeType::N16 => {
                if let Some(slot) = self.locate_slot(ep, node, byte) {
                    ep.write(
                        node.addr.add((node.ty.ptrs_off() + 8 * slot) as u64),
                        &0u64.to_le_bytes(),
                    );
                }
            }
            NodeType::N48 => {
                // Clear both the index byte and the pointer: a dangling
                // index byte would alias the slot once it is reused.
                if let Some(slot) = self.locate_slot(ep, node, byte) {
                    ep.write_batch(&[
                        (
                            node.addr.add((NodeType::KEYS_OFF + byte as usize) as u64),
                            &[0u8],
                        ),
                        (
                            node.addr.add((node.ty.ptrs_off() + 8 * slot) as u64),
                            &0u64.to_le_bytes(),
                        ),
                    ]);
                }
            }
            NodeType::N256 => {
                ep.write(
                    node.addr.add((node.ty.ptrs_off() + 8 * byte as usize) as u64),
                    &0u64.to_le_bytes(),
                );
            }
        }
        if let Ok(i) = node.children.binary_search_by_key(&byte, |e| e.0) {
            node.children.remove(i);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmem::node::RESERVED_BYTES;
    use dmem::Pool;

    fn setup() -> (Endpoint, ArtOps) {
        (
            Endpoint::new(Pool::with_defaults(1, 16 << 20)),
            ArtOps { value_size: 8 },
        )
    }

    #[test]
    fn child_tagging_roundtrip() {
        let a = GlobalAddr::new(3, 0x1234);
        for c in [
            Child::Empty,
            Child::Leaf(a),
            Child::Node(a, NodeType::N4),
            Child::Node(a, NodeType::N48),
            Child::Node(a, NodeType::N256),
        ] {
            assert_eq!(Child::decode(c.encode()), c);
        }
    }

    #[test]
    fn node_type_geometry() {
        assert_eq!(NodeType::N4.size(), 64);
        assert!(NodeType::N16.size() < NodeType::N48.size());
        assert!(NodeType::N48.size() < NodeType::N256.size());
        assert_eq!(NodeType::N256.lock_off() % 8, 0);
    }

    #[test]
    fn leaf_roundtrip_and_update() {
        let (mut ep, ops) = setup();
        let addr = GlobalAddr::new(0, RESERVED_BYTES);
        ops.write_leaf(&mut ep, addr, 42, &7u64.to_le_bytes());
        assert_eq!(ops.read_leaf(&mut ep, addr), (42, 7u64.to_le_bytes().to_vec()));
        ops.update_leaf(&mut ep, addr, &9u64.to_le_bytes());
        assert_eq!(ops.read_leaf(&mut ep, addr), (42, 9u64.to_le_bytes().to_vec()));
    }

    #[test]
    fn large_value_leaf_locked_update() {
        let pool = Pool::with_defaults(1, 16 << 20);
        let mut ep = Endpoint::new(pool);
        let ops = ArtOps { value_size: 256 };
        let addr = GlobalAddr::new(0, RESERVED_BYTES);
        ops.write_leaf(&mut ep, addr, 5, &[1u8; 256]);
        ops.update_leaf(&mut ep, addr, &[2u8; 256]);
        let (k, v) = ops.read_leaf(&mut ep, addr);
        assert_eq!(k, 5);
        assert_eq!(v, vec![2u8; 256]);
    }

    #[test]
    fn node_write_parse_roundtrip() {
        let (mut ep, ops) = setup();
        for ty in [NodeType::N4, NodeType::N16, NodeType::N48, NodeType::N256] {
            let addr = GlobalAddr::new(0, RESERVED_BYTES + 8192 * ty.code());
            let kids = vec![
                (3u8, Child::Leaf(GlobalAddr::new(0, 0x100)).encode()),
                (200u8, Child::Leaf(GlobalAddr::new(0, 0x200)).encode()),
            ];
            ops.write_node(&mut ep, addr, ty, &[9, 8], &kids);
            let n = ops.read_node(&mut ep, addr, ty);
            assert_eq!(n.ty, ty);
            assert_eq!(n.prefix, vec![9, 8]);
            assert_eq!(n.children, kids);
            assert!(!n.obsolete);
            assert_eq!(Child::decode(n.child(3)), Child::Leaf(GlobalAddr::new(0, 0x100)));
            assert_eq!(n.child(4), 0);
        }
    }

    #[test]
    fn slot_writes_visible() {
        let (mut ep, ops) = setup();
        let addr = GlobalAddr::new(0, RESERVED_BYTES);
        ops.write_node(&mut ep, addr, NodeType::N16, &[], &[]);
        let mut n = ops.read_node(&mut ep, addr, NodeType::N16);
        assert!(ops.lock_node(&mut ep, addr, NodeType::N16));
        for b in [5u8, 1, 9] {
            let leaf = Child::Leaf(GlobalAddr::new(0, 0x1000 + b as u64)).encode();
            ops.write_slot(&mut ep, &mut n, b, leaf);
        }
        ops.unlock_node(&mut ep, addr, NodeType::N16);
        let got = ops.read_node(&mut ep, addr, NodeType::N16);
        assert_eq!(got.children.len(), 3);
        assert_eq!(got.children[0].0, 1);
        assert_eq!(got.children[2].0, 9);
        // Overwrite an existing byte.
        assert!(ops.lock_node(&mut ep, addr, NodeType::N16));
        let mut n2 = ops.read_node(&mut ep, addr, NodeType::N16);
        let nl = Child::Leaf(GlobalAddr::new(0, 0x9999)).encode();
        ops.write_slot(&mut ep, &mut n2, 5, nl);
        ops.unlock_node(&mut ep, addr, NodeType::N16);
        let got = ops.read_node(&mut ep, addr, NodeType::N16);
        assert_eq!(Child::decode(got.child(5)), Child::Leaf(GlobalAddr::new(0, 0x9999)));
    }

    #[test]
    fn retire_blocks_locking() {
        let (mut ep, ops) = setup();
        let addr = GlobalAddr::new(0, RESERVED_BYTES);
        ops.write_node(&mut ep, addr, NodeType::N4, &[], &[]);
        assert!(ops.lock_node(&mut ep, addr, NodeType::N4));
        ops.retire_node(&mut ep, addr, NodeType::N4);
        assert!(!ops.lock_node(&mut ep, addr, NodeType::N4));
        let n = ops.read_node(&mut ep, addr, NodeType::N4);
        assert!(n.obsolete);
    }

    #[test]
    fn clear_slot_removes_child() {
        let (mut ep, ops) = setup();
        let addr = GlobalAddr::new(0, RESERVED_BYTES);
        let kid = Child::Leaf(GlobalAddr::new(0, 0x100)).encode();
        ops.write_node(&mut ep, addr, NodeType::N48, &[], &[(7, kid)]);
        let mut n = ops.read_node(&mut ep, addr, NodeType::N48);
        assert!(ops.lock_node(&mut ep, addr, NodeType::N48));
        ops.clear_slot(&mut ep, &mut n, 7);
        ops.unlock_node(&mut ep, addr, NodeType::N48);
        let got = ops.read_node(&mut ep, addr, NodeType::N48);
        assert_eq!(got.child(7), 0);
        assert!(got.children.is_empty());
    }
}
