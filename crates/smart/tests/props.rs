//! Property tests for the SMART baseline: pointer tagging, node
//! serialization and tree/model equivalence over adversarial key shapes.

use std::collections::BTreeMap;

use dmem::node::RESERVED_BYTES;
use dmem::{Endpoint, GlobalAddr, Pool, RangeIndex};
use proptest::prelude::*;
use smart::node::{ArtOps, Child, NodeType};
use smart::{Smart, SmartConfig};

fn v(k: u64) -> Vec<u8> {
    k.to_le_bytes().to_vec()
}

proptest! {
    /// Tagged child pointers round-trip for every node type and address.
    #[test]
    fn child_tagging_roundtrip(mn in 0u16..4096, off in 0u64..(1 << 40)) {
        let a = GlobalAddr::new(mn, off);
        for c in [
            Child::Leaf(a),
            Child::Node(a, NodeType::N4),
            Child::Node(a, NodeType::N16),
            Child::Node(a, NodeType::N48),
            Child::Node(a, NodeType::N256),
        ] {
            prop_assert_eq!(Child::decode(c.encode()), c);
        }
    }

    /// Node serialization round-trips arbitrary child sets per type.
    #[test]
    fn node_roundtrip(
        bytes in proptest::collection::btree_set(any::<u8>(), 0..40),
        prefix in proptest::collection::vec(any::<u8>(), 0..8),
    ) {
        let pool = Pool::with_defaults(1, 16 << 20);
        let mut ep = Endpoint::new(pool);
        let ops = ArtOps { value_size: 8 };
        for ty in [NodeType::N48, NodeType::N256] {
            let kids: Vec<(u8, u64)> = bytes
                .iter()
                .map(|&b| (b, Child::Leaf(GlobalAddr::new(0, 64 + b as u64 * 64)).encode()))
                .collect();
            let addr = GlobalAddr::new(0, RESERVED_BYTES + 8192 * ty.capacity() as u64);
            ops.write_node(&mut ep, addr, ty, &prefix, &kids);
            let n = ops.read_node(&mut ep, addr, ty);
            prop_assert_eq!(&n.prefix, &prefix);
            prop_assert_eq!(&n.children, &kids);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The radix tree agrees with a BTreeMap, including keys engineered to
    /// share long prefixes (path-compression stress).
    #[test]
    fn tree_matches_model(
        ops in proptest::collection::vec((any::<u64>(), 0u8..4), 1..200),
    ) {
        let pool = Pool::with_defaults(1, 256 << 20);
        let t = Smart::create(&pool, SmartConfig::default(), 0);
        let cn = t.new_cn();
        let mut c = t.client(&cn);
        let mut model: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
        for (seed, op) in ops {
            // Bias keys into clusters sharing prefixes.
            let key = match seed % 3 {
                0 => 1 + seed % 64,                          // dense low keys
                1 => (0xAABB_0000_0000_0000u64) | (seed % 1024), // long prefix
                _ => dmem::hash::mix64(seed) | 1,            // random
            };
            match op {
                0 | 1 => {
                    c.insert(key, &v(key)).unwrap();
                    model.insert(key, v(key));
                }
                2 => {
                    prop_assert_eq!(c.delete(key).unwrap(), model.remove(&key).is_some());
                }
                _ => {
                    prop_assert_eq!(c.search(key), model.get(&key).cloned());
                }
            }
        }
        for (k, val) in &model {
            prop_assert_eq!(c.search(*k), Some(val.clone()));
        }
        // Scans over the radix tree come back in numeric order.
        let mut out = Vec::new();
        c.scan(1, model.len() + 5, &mut out);
        let want: Vec<(u64, Vec<u8>)> = model
            .iter()
            .map(|(k, val)| (*k, val.clone()))
            .collect();
        prop_assert_eq!(out, want);
    }
}
