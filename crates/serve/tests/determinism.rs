//! The serving determinism contract: a [`SimConfig`] seed fully determines
//! every exported byte — metrics JSON, trace JSONL, per-connection
//! counters — and backpressure behaves as configured.

use serve::{run_sim, OverloadPolicy, SimConfig};

fn base_cfg() -> SimConfig {
    SimConfig {
        seed: 11,
        conns: 12,
        workers: 2,
        requests_per_conn: 80,
        preload: 2_048,
        trace_events: 2_048,
        ..Default::default()
    }
}

#[test]
fn same_seed_is_byte_identical() {
    let cfg = base_cfg();
    let a = run_sim(&cfg);
    let b = run_sim(&cfg);
    assert!(a.served > 0);
    assert_eq!(a.metrics.to_json(), b.metrics.to_json(), "metrics JSON");
    assert_eq!(a.trace_jsonl, b.trace_jsonl, "trace JSONL");
    assert!(!a.trace_jsonl.is_empty(), "tracing was enabled");
    assert_eq!(a.served, b.served);
    assert_eq!(a.makespan_ns, b.makespan_ns);
    for (ca, cb) in a.conns.iter().zip(b.conns.iter()) {
        assert_eq!(ca.counters, cb.counters, "conn {}", ca.id);
        assert_eq!(ca.end_ns, cb.end_ns, "conn {}", ca.id);
    }
}

#[test]
fn different_seeds_differ() {
    let a = run_sim(&base_cfg());
    let b = run_sim(&SimConfig {
        seed: 12,
        ..base_cfg()
    });
    assert_ne!(
        a.metrics.to_json(),
        b.metrics.to_json(),
        "a different seed must produce a different run"
    );
}

#[test]
fn overload_sheds_and_underload_does_not() {
    // Saturating arrivals against a low watermark: shedding must engage.
    let hot = run_sim(&SimConfig {
        conns: 16,
        workers: 1,
        mean_gap_ns: 300,
        cq_watermark: 8,
        policy: OverloadPolicy::Shed,
        ..base_cfg()
    });
    assert!(hot.shed > 0, "overload must shed (shed={})", hot.shed);
    assert!(hot.served > 0, "shedding must not starve service");

    // Sparse arrivals: the watermark is never crossed.
    let cold = run_sim(&SimConfig {
        conns: 16,
        workers: 1,
        mean_gap_ns: 60_000,
        cq_watermark: 8,
        policy: OverloadPolicy::Shed,
        ..base_cfg()
    });
    assert_eq!(cold.shed, 0, "underload must not shed");
    assert_eq!(cold.served, cold.conns.iter().map(|c| c.counters.requests).sum::<u64>());
}

#[test]
fn defer_policy_waits_instead_of_shedding_first() {
    let cfg = SimConfig {
        conns: 16,
        workers: 1,
        mean_gap_ns: 300,
        cq_watermark: 8,
        policy: OverloadPolicy::Defer,
        ..base_cfg()
    };
    let a = run_sim(&cfg);
    assert!(a.deferred > 0, "overload under Defer must queue-wait");
    // Deferred requests either ran after the depth dropped or shed after
    // bounded rounds — both are accounted.
    let b = run_sim(&cfg);
    assert_eq!(a.metrics.to_json(), b.metrics.to_json(), "Defer is deterministic too");
}

#[test]
fn admission_exhaustion_refuses_deterministically() {
    let cfg = SimConfig {
        conns: 12,
        workers: 1,
        admit_limit: 5,
        ..base_cfg()
    };
    let a = run_sim(&cfg);
    assert!(a.conns_refused > 0, "more conns than permits must refuse");
    assert!(
        a.conns.iter().filter(|c| c.admitted).count() >= 5,
        "permits must be used"
    );
    let b = run_sim(&cfg);
    assert_eq!(a.conns_refused, b.conns_refused);
    assert_eq!(a.metrics.to_json(), b.metrics.to_json());
}

#[test]
fn per_connection_counters_are_labeled() {
    let a = run_sim(&base_cfg());
    let c0 = &a.conns[0];
    let id = c0.id.to_string();
    assert_eq!(
        a.metrics
            .counter_value("serve_conn_requests", &[("conn", id.as_str())]),
        c0.counters.requests
    );
    assert_eq!(a.metrics.counter_sum("serve_requests_total"), a.conns.iter().map(|c| c.counters.requests).sum::<u64>());
}

#[test]
fn serve_phases_are_charged() {
    use obs::Phase;
    let a = run_sim(&base_cfg());
    for p in [Phase::Decode, Phase::Respond] {
        assert!(
            a.profile.phase(p).ns > 0,
            "phase {} must accumulate time",
            p.as_str()
        );
    }
    assert!(
        a.metrics.counter_value("serve_phase_ns", &[("phase", "decode")]) > 0,
        "decode phase exported"
    );
}
