//! Property tests for the frame parser: arbitrary garbage, truncation,
//! pipelining and chunking must never panic, and must either resync or
//! close deterministically.

use proptest::prelude::*;
use serve::proto::{Decoder, Request, MAX_ARGS, MAX_BULK};

/// Drains a decoder, returning (requests, recoverable errors, fatal?).
fn drain(d: &mut Decoder) -> (Vec<Request>, usize, bool) {
    let mut reqs = Vec::new();
    let mut recov = 0usize;
    loop {
        match d.try_next() {
            Ok(Some(r)) => reqs.push(r),
            Ok(None) => return (reqs, recov, false),
            Err(e) if !e.is_fatal() => recov += 1,
            Err(_) => return (reqs, recov, true),
        }
    }
}

/// Builds the wire bytes of a request list.
fn wire_of(reqs: &[Request]) -> Vec<u8> {
    let mut out = Vec::new();
    for r in reqs {
        r.encode(&mut out);
    }
    out
}

/// Derives a request from three raw draws.
fn req_of(kind: u8, key: u64, len: usize) -> Request {
    match kind % 5 {
        0 => Request::Get(key),
        1 => Request::Set(key, vec![0x5A; len % 256]),
        2 => Request::Del(key),
        3 => Request::Scan(key, len % 64 + 1),
        _ => Request::Ping,
    }
}

proptest! {
    /// Arbitrary garbage never panics the decoder, and a fatal error is
    /// sticky per drain (the stream is closed, not re-interpreted).
    #[test]
    fn garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let mut d = Decoder::new();
        d.feed(&bytes);
        let _ = drain(&mut d);
    }

    /// Pipelined well-formed requests decode back exactly, regardless of
    /// how the byte stream is chunked.
    #[test]
    fn chunking_is_transparent(
        draws in proptest::collection::vec((any::<u8>(), any::<u64>(), 0usize..300), 1..12),
        cuts in proptest::collection::vec(1usize..64, 0..12),
    ) {
        let reqs: Vec<Request> = draws.iter().map(|&(k, key, len)| req_of(k, key, len)).collect();
        let wire = wire_of(&reqs);
        let mut d = Decoder::new();
        let mut got = Vec::new();
        let mut off = 0usize;
        let mut ci = 0usize;
        while off < wire.len() {
            let step = cuts.get(ci).copied().unwrap_or(wire.len());
            ci += 1;
            let end = (off + step).min(wire.len());
            d.feed(&wire[off..end]);
            off = end;
            let (mut part, recov, fatal) = drain(&mut d);
            prop_assert_eq!(recov, 0);
            prop_assert!(!fatal);
            got.append(&mut part);
        }
        prop_assert_eq!(got, reqs);
        prop_assert_eq!(d.pending_bytes(), 0);
    }

    /// A truncated stream yields exactly the complete prefix of frames and
    /// then waits for more bytes — never an error, never a partial request.
    #[test]
    fn truncation_yields_the_complete_prefix(
        draws in proptest::collection::vec((any::<u8>(), any::<u64>(), 0usize..300), 1..8),
        frac in 0usize..100,
    ) {
        let reqs: Vec<Request> = draws.iter().map(|&(k, key, len)| req_of(k, key, len)).collect();
        let wire = wire_of(&reqs);
        let cut = wire.len() * frac / 100;
        let mut d = Decoder::new();
        d.feed(&wire[..cut]);
        let (got, recov, fatal) = drain(&mut d);
        prop_assert_eq!(recov, 0);
        prop_assert!(!fatal);
        prop_assert!(got.len() <= reqs.len());
        prop_assert_eq!(&reqs[..got.len()], &got[..]);
        // Feeding the rest completes the stream.
        d.feed(&wire[cut..]);
        let (rest, _, fatal) = drain(&mut d);
        prop_assert!(!fatal);
        prop_assert_eq!(&reqs[got.len()..], &rest[..]);
    }

    /// Garbage injected between well-formed inline commands is skipped with
    /// a recoverable resync; the well-formed commands still decode.
    #[test]
    fn inline_garbage_resyncs(
        junk in proptest::collection::vec(0x20u8..0x7F, 1..40),
        key in any::<u64>(),
    ) {
        let mut wire = Vec::new();
        Request::Get(key).encode(&mut wire);
        wire.extend_from_slice(&junk);
        wire.extend_from_slice(b"\r\n");
        Request::Del(key).encode(&mut wire);
        let mut d = Decoder::new();
        d.feed(&wire);
        let mut got = Vec::new();
        let mut fatal = false;
        loop {
            match d.try_next() {
                Ok(Some(r)) => got.push(r),
                Ok(None) => break,
                Err(e) => {
                    if e.is_fatal() {
                        fatal = true;
                        break;
                    }
                }
            }
        }
        prop_assert!(!fatal);
        // The junk line may happen to parse as a command; both surrounding
        // requests must always survive.
        prop_assert!(got.contains(&Request::Get(key)));
        prop_assert!(got.contains(&Request::Del(key)));
    }

    /// Oversized declared lengths are rejected as fatal without allocating
    /// the declared size.
    #[test]
    fn oversized_lengths_close(extra in 1u64..1_000_000) {
        let hdr = format!("*2\r\n$3\r\nSET\r\n${}\r\n", MAX_BULK as u64 + extra);
        let mut d = Decoder::new();
        d.feed(hdr.as_bytes());
        let (_, _, fatal) = drain(&mut d);
        prop_assert!(fatal);
        let hdr = format!("*{}\r\n", MAX_ARGS as u64 + extra);
        let mut d = Decoder::new();
        d.feed(hdr.as_bytes());
        let (_, _, fatal) = drain(&mut d);
        prop_assert!(fatal);
    }

    /// Decoding is a pure function of the byte stream: the same bytes fed
    /// twice produce identical request sequences and error classes.
    #[test]
    fn decode_is_deterministic(bytes in proptest::collection::vec(any::<u8>(), 0..300)) {
        let mut a = Decoder::new();
        a.feed(&bytes);
        let ra = drain(&mut a);
        let mut b = Decoder::new();
        b.feed(&bytes);
        let rb = drain(&mut b);
        prop_assert_eq!(ra, rb);
    }
}
