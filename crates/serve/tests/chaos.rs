//! Chaos-composed serving runs: a seeded connection storm with
//! mid-pipeline connection drops, slow-reader stalls and injected fail-CAS
//! faults must replay **exactly** — byte-identical metrics and traces —
//! and the server must keep serving through it.

use dmem::{FaultAction, FaultPlan, FaultRule, VerbKind};
use serve::{run_sim, ChaosConfig, OverloadPolicy, SimConfig};

/// The composed storm: drops + stalls + fail-CAS under pressure.
fn storm_cfg(seed: u64) -> SimConfig {
    let mut plan = FaultPlan::seeded(seed ^ 0xFA01);
    // Lock words are taken with masked CAS; failing a slice of them forces
    // lock-acquire retries inside served requests.
    plan.rules.push(FaultRule {
        probability: 0.10,
        ..FaultRule::always(
            "serve-cas-chaos",
            Some(VerbKind::MaskedCas),
            FaultAction::FailCas,
        )
    });
    SimConfig {
        seed,
        conns: 16,
        workers: 2,
        requests_per_conn: 60,
        preload: 2_048,
        mean_gap_ns: 1_500,
        cq_watermark: 6,
        policy: OverloadPolicy::Shed,
        trace_events: 2_048,
        chaos: ChaosConfig {
            drop_pct: 25,
            stall_pct: 5,
            stall_ns: 500_000,
            out_limit: 2_048,
        },
        faults: Some(plan),
        ..Default::default()
    }
}

#[test]
fn chaos_storm_replays_byte_identically() {
    let cfg = storm_cfg(0xC4A0);
    let a = run_sim(&cfg);
    let b = run_sim(&cfg);
    assert_eq!(a.metrics.to_json(), b.metrics.to_json(), "metrics JSON");
    assert_eq!(a.trace_jsonl, b.trace_jsonl, "trace JSONL");
    assert_eq!(a.served, b.served);
    assert_eq!(a.conns_dropped, b.conns_dropped);
    for (ca, cb) in a.conns.iter().zip(b.conns.iter()) {
        assert_eq!(ca.counters, cb.counters, "conn {}", ca.id);
        assert_eq!(ca.discarded_bytes, cb.discarded_bytes, "conn {}", ca.id);
    }
}

#[test]
fn chaos_storm_exercises_every_failure_mode() {
    let a = run_sim(&storm_cfg(0xC4A1));
    assert!(a.served > 0, "the storm must not starve service");
    assert!(a.conns_dropped > 0, "some connections must drop mid-pipeline");
    assert!(
        a.conns.iter().any(|c| c.dropped && c.discarded_bytes > 0),
        "a drop must truncate inside a frame (partial bytes discarded)"
    );
    assert!(a.shed > 0, "pressure + chaos must shed");
}

#[test]
fn connection_drops_do_not_leak_permits() {
    // Exactly as many releases as admissions: rerunning with a second wave
    // of connections (same Admission limit) must admit them all.
    let cfg = SimConfig {
        admit_limit: 16,
        ..storm_cfg(0xC4A2)
    };
    let a = run_sim(&cfg);
    assert_eq!(a.conns_refused, 0, "limit covers all conns");
    // Every admitted conn either finished, dropped, or aborted — all paths
    // release their permit, so refusals can only come from concurrency.
    let terminal = a
        .conns
        .iter()
        .filter(|c| c.admitted)
        .count();
    assert_eq!(terminal, a.conns.len());
}

#[test]
fn slow_reader_guard_aborts_stalled_connections() {
    // Aggressive stalls with a tiny out-buffer limit: the guard must fire.
    let cfg = SimConfig {
        chaos: ChaosConfig {
            drop_pct: 0,
            stall_pct: 60,
            stall_ns: 400_000,
            out_limit: 64,
        },
        pipeline_pct: 80,
        ..storm_cfg(0xC4A3)
    };
    let a = run_sim(&cfg);
    assert!(
        a.conns_aborted > 0,
        "stalled connections over the out-buffer limit must abort"
    );
    let b = run_sim(&cfg);
    assert_eq!(a.conns_aborted, b.conns_aborted, "abort count is seeded");
}

#[test]
fn fault_injection_composes_with_serving() {
    // The fail-CAS plan must actually perturb the run relative to no
    // faults — and stay deterministic.
    let with = run_sim(&storm_cfg(0xC4A4));
    let without = run_sim(&SimConfig {
        faults: None,
        ..storm_cfg(0xC4A4)
    });
    assert_ne!(
        with.metrics.to_json(),
        without.metrics.to_json(),
        "injected faults must be visible in the run"
    );
}
