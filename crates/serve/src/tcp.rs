//! The real-TCP transport: the same protocol/connection core as the
//! simulated mode, bound to actual sockets for manual runs.
//!
//! This module is intentionally thin: framing, command execution and
//! admission are the shared [`crate::proto`] / [`crate::conn`] /
//! [`crate::admission`] code; all this adds is `TcpListener` plumbing and
//! a thread per connection. It is **not** part of the deterministic
//! surface — nothing here feeds metrics JSON, bench reports or traces —
//! so wall-clock reads below carry explicit lint waivers.
//!
//! Backpressure in this mode is admission-only: the serial (hook-free)
//! endpoint completes every verb inline, so there is no CQ depth to
//! watch; a connection beyond the permit limit is answered `-BUSY` and
//! closed, which is the same observable behavior a shed request sees in
//! the simulated mode.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use chime::{Chime, ChimeConfig};
use dmem::{Pool, RangeIndex};
use ycsb::KeySpace;

use crate::admission::Admission;
use crate::conn::{execute, Conn};
use crate::proto::{Request, Response};

/// Configuration of the real-TCP server.
#[derive(Debug, Clone)]
pub struct TcpConfig {
    /// Bind address, e.g. `127.0.0.1:7979` (port 0 picks a free port).
    pub addr: String,
    /// Keys preloaded at startup.
    pub preload: u64,
    /// Value width of the index.
    pub value_size: usize,
    /// Connection-admission permits.
    pub admit_limit: usize,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            addr: "127.0.0.1:0".to_string(),
            preload: 10_000,
            value_size: 8,
            admit_limit: 64,
        }
    }
}

/// Live counters the server accumulates (printed at shutdown).
#[derive(Debug, Default)]
pub struct TcpCounters {
    /// Connections accepted and admitted.
    pub conns: AtomicU64,
    /// Connections refused admission (`-BUSY` + close).
    pub conns_refused: AtomicU64,
    /// Requests executed.
    pub requests: AtomicU64,
    /// Recoverable protocol errors answered `-ERR`.
    pub frame_errors: AtomicU64,
}

/// A running TCP server.
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    counters: Arc<TcpCounters>,
    accept_thread: Option<thread::JoinHandle<()>>,
}

impl Server {
    /// Builds the index, preloads it, binds the listener and starts the
    /// accept loop on a background thread.
    pub fn start(cfg: TcpConfig) -> std::io::Result<Server> {
        let pool = Pool::with_defaults(1, 256 << 20);
        let tree_cfg = ChimeConfig {
            value_size: cfg.value_size,
            ..Default::default()
        };
        let tree = Arc::new(Chime::create(&pool, tree_cfg, 0));
        let cn = tree.new_cn();
        {
            let mut loader = tree.client(&cn);
            let value = vec![0u8; cfg.value_size];
            for seq in 0..cfg.preload {
                loader
                    .insert(KeySpace::key(seq), &value)
                    .expect("preload insert");
            }
        }
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(TcpCounters::default());
        let admission = Arc::new(Admission::new(cfg.admit_limit));
        let accept_stop = Arc::clone(&stop);
        let accept_counters = Arc::clone(&counters);
        let value_size = cfg.value_size;
        let accept_thread = thread::spawn(move || {
            let mut conn_id = 0u32;
            let mut handlers = Vec::new();
            while !accept_stop.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        if !admission.try_admit() {
                            accept_counters.conns_refused.fetch_add(1, Ordering::Relaxed);
                            let mut s = stream;
                            let mut buf = Vec::new();
                            Response::Busy.encode(&mut buf);
                            let _ = s.write_all(&buf);
                            continue;
                        }
                        accept_counters.conns.fetch_add(1, Ordering::Relaxed);
                        let id = conn_id;
                        conn_id += 1;
                        let tree = Arc::clone(&tree);
                        let cn = Arc::clone(&cn);
                        let admission = Arc::clone(&admission);
                        let counters = Arc::clone(&accept_counters);
                        handlers.push(thread::spawn(move || {
                            let mut client = tree.client(&cn);
                            handle_conn(id, stream, &mut client, value_size, &counters);
                            admission.release();
                        }));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        // chime-lint: allow(determinism): accept-loop poll interval on the wall-clock transport, outside the deterministic surface
                        thread::sleep(Duration::from_millis(1));
                    }
                    Err(_) => break,
                }
            }
            for h in handlers {
                let _ = h.join();
            }
        });
        Ok(Server {
            addr,
            stop,
            counters,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The live counters.
    pub fn counters(&self) -> &TcpCounters {
        &self.counters
    }

    /// Stops accepting, waits for the accept loop (open connections finish
    /// when their peers close).
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
    }
}

/// Serves one TCP connection until EOF or a fatal protocol error.
fn handle_conn(
    id: u32,
    mut stream: TcpStream,
    client: &mut (impl RangeIndex + ?Sized),
    value_size: usize,
    counters: &TcpCounters,
) {
    let mut conn = Conn::new(id);
    let mut buf = [0u8; 4096];
    loop {
        let n = match stream.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => n,
        };
        conn.feed(&buf[..n]);
        let mut fatal = false;
        loop {
            match conn.next_request() {
                Ok(Some(req)) => {
                    counters.requests.fetch_add(1, Ordering::Relaxed);
                    let resp = execute(client, &req, value_size);
                    conn.respond(&resp);
                }
                Ok(None) => break,
                Err(_) => {
                    fatal = true;
                    break;
                }
            }
        }
        counters
            .frame_errors
            .fetch_add(conn.counters.frame_errors, Ordering::Relaxed);
        conn.counters.frame_errors = 0;
        let out = conn.drain();
        if !out.is_empty() && stream.write_all(&out).is_err() {
            break;
        }
        if fatal {
            break;
        }
    }
}

/// Outcome of one load-generation run.
#[derive(Debug, Default)]
pub struct LoadReport {
    /// Requests sent.
    pub sent: u64,
    /// Successful responses (`+OK`, values, nil, ints, pairs).
    pub ok: u64,
    /// `-BUSY` responses.
    pub busy: u64,
    /// `-ERR` responses.
    pub errors: u64,
    /// Wall-clock run duration, microseconds.
    pub elapsed_us: u64,
}

/// Drives `requests` pipelined requests per connection over `conns`
/// connections against `addr`, reading responses back. Client-side tool:
/// wall-clock timing only, never part of the deterministic surface.
pub fn run_load(
    addr: &str,
    conns: usize,
    requests: usize,
    seed: u64,
    key_range: u64,
) -> std::io::Result<LoadReport> {
    // chime-lint: allow(determinism): load generator measures real elapsed time by design
    let t0 = std::time::Instant::now();
    let mut handles = Vec::new();
    for c in 0..conns {
        let addr = addr.to_string();
        handles.push(thread::spawn(move || -> std::io::Result<(u64, u64, u64, u64)> {
            let mut stream = TcpStream::connect(&addr)?;
            let mut state = seed ^ (c as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
            let mut next = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state.wrapping_mul(0x2545_F491_4F6C_DD1D)
            };
            let (mut sent, mut ok, mut busy, mut errors) = (0u64, 0u64, 0u64, 0u64);
            let mut wire = Vec::new();
            let window = 8usize;
            let mut inflight = 0usize;
            let mut rd = std::io::BufReader::new(stream.try_clone()?);
            for i in 0..requests {
                wire.clear();
                let key = KeySpace::key(next() % key_range.max(1));
                let req = match next() % 100 {
                    0..=79 => Request::Get(key),
                    80..=94 => Request::Set(key, next().to_le_bytes().to_vec()),
                    95..=98 => Request::Del(key),
                    _ => Request::Scan(key, 8),
                };
                req.encode(&mut wire);
                stream.write_all(&wire)?;
                sent += 1;
                inflight += 1;
                if inflight >= window || i + 1 == requests {
                    for _ in 0..inflight {
                        match read_response(&mut rd)? {
                            ResponseClass::Busy => busy += 1,
                            ResponseClass::Err => errors += 1,
                            ResponseClass::Ok => ok += 1,
                        }
                    }
                    inflight = 0;
                }
            }
            Ok((sent, ok, busy, errors))
        }));
    }
    let mut rep = LoadReport::default();
    for h in handles {
        let (sent, ok, busy, errors) = h.join().expect("loadgen thread")?;
        rep.sent += sent;
        rep.ok += ok;
        rep.busy += busy;
        rep.errors += errors;
    }
    rep.elapsed_us = t0.elapsed().as_micros() as u64;
    Ok(rep)
}

enum ResponseClass {
    Ok,
    Busy,
    Err,
}

/// Reads exactly one response frame off the stream, classifying it.
fn read_response(rd: &mut impl std::io::BufRead) -> std::io::Result<ResponseClass> {
    let mut line = Vec::new();
    read_line(rd, &mut line)?;
    match line.first() {
        Some(b'+') | Some(b':') => Ok(ResponseClass::Ok),
        Some(b'-') => {
            if line.starts_with(b"-BUSY") {
                Ok(ResponseClass::Busy)
            } else {
                Ok(ResponseClass::Err)
            }
        }
        Some(b'$') => {
            let n = ascii(&line[1..]);
            if n >= 0 {
                skip(rd, n as usize + 2)?;
            }
            Ok(ResponseClass::Ok)
        }
        Some(b'*') => {
            let items = ascii(&line[1..]).max(0) as usize;
            for _ in 0..items {
                let mut hdr = Vec::new();
                read_line(rd, &mut hdr)?;
                if hdr.first() == Some(&b'$') {
                    let n = ascii(&hdr[1..]);
                    if n >= 0 {
                        skip(rd, n as usize + 2)?;
                    }
                }
            }
            Ok(ResponseClass::Ok)
        }
        _ => Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "unparseable response",
        )),
    }
}

fn read_line(rd: &mut impl std::io::BufRead, out: &mut Vec<u8>) -> std::io::Result<()> {
    loop {
        let mut byte = [0u8; 1];
        rd.read_exact(&mut byte)?;
        if byte[0] == b'\n' {
            if out.last() == Some(&b'\r') {
                out.pop();
            }
            return Ok(());
        }
        out.push(byte[0]);
    }
}

fn skip(rd: &mut impl std::io::BufRead, n: usize) -> std::io::Result<()> {
    let mut left = n;
    let mut buf = [0u8; 256];
    while left > 0 {
        let take = left.min(buf.len());
        rd.read_exact(&mut buf[..take])?;
        left -= take;
    }
    Ok(())
}

fn ascii(b: &[u8]) -> i64 {
    std::str::from_utf8(b)
        .ok()
        .and_then(|s| s.trim().parse::<i64>().ok())
        .unwrap_or(-1)
}
