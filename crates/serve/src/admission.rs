//! Connection admission: a counting semaphore of connection permits.
//!
//! The server holds a fixed number of permits; a connection must win one
//! before any of its requests are decoded, and returns it when it closes.
//! Acquisition is a single atomic CAS loop — never a blocking wait — so
//! the same type serves both the deterministic simulated-socket mode
//! (where a refused connection retries by advancing virtual time) and the
//! real-TCP mode (where a refused connection is answered `-BUSY` and
//! closed). The TOCTOU pitfall from the pelikan transcript is avoided by
//! making reserve-and-count one atomic step.

use std::sync::atomic::{AtomicU64, Ordering};

/// The admission semaphore.
#[derive(Debug)]
pub struct Admission {
    permits: AtomicU64,
    limit: u64,
    refused: AtomicU64,
}

impl Admission {
    /// Creates an admission gate with `limit` connection permits.
    pub fn new(limit: usize) -> Self {
        Admission {
            permits: AtomicU64::new(limit as u64),
            limit: limit as u64,
            refused: AtomicU64::new(0),
        }
    }

    /// Tries to take one permit. Returns `false` (and counts a refusal)
    /// when none are free. Never blocks.
    pub fn try_admit(&self) -> bool {
        let mut cur = self.permits.load(Ordering::Relaxed);
        loop {
            if cur == 0 {
                self.refused.fetch_add(1, Ordering::Relaxed);
                return false;
            }
            match self.permits.compare_exchange_weak(
                cur,
                cur - 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Returns one permit.
    pub fn release(&self) {
        let prev = self.permits.fetch_add(1, Ordering::AcqRel);
        debug_assert!(prev < self.limit, "release without a matching admit");
    }

    /// Permits currently free.
    pub fn available(&self) -> u64 {
        self.permits.load(Ordering::Relaxed)
    }

    /// The configured permit count.
    pub fn limit(&self) -> u64 {
        self.limit
    }

    /// Admission attempts refused so far.
    pub fn refused(&self) -> u64 {
        self.refused.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permits_bound_admissions() {
        let a = Admission::new(2);
        assert!(a.try_admit());
        assert!(a.try_admit());
        assert!(!a.try_admit());
        assert_eq!(a.refused(), 1);
        a.release();
        assert!(a.try_admit());
        assert_eq!(a.available(), 0);
    }
}
