//! `serve` — the serving front end over the CHIME stack.
//!
//! The repro's north star is "serving heavy traffic", and this crate is
//! the layer that turns connections into index operations: a RESP-like
//! framed protocol ([`proto`]), a transport-agnostic connection state
//! machine and command executor ([`conn`]), semaphore-based connection
//! admission ([`admission`]), and two transports built from that one core:
//!
//! * [`sim`] — the **deterministic simulated-socket mode**: connections
//!   are seeded arrival processes on the virtual clock, multiplexed as
//!   coroutine lanes of `sched` workers, with CQ-depth-driven backpressure
//!   read off a [`sched::CqDepthGauge`]. CI-runnable, chaos-composable,
//!   byte-identical per seed.
//! * [`tcp`] — the **real-TCP mode** behind the `chime-server` /
//!   `chime-loadgen` binaries, for manual runs against actual sockets.
//!
//! The split mirrors the rest of the repo: the protocol, admission and
//! backpressure logic is exercised (and gated) deterministically; the
//! wall-clock transport is a thin shell around the same functions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod conn;
pub mod proto;
pub mod sim;
pub mod tcp;

pub use admission::Admission;
pub use conn::{execute, Conn, ConnCounters};
pub use proto::{Decoder, ProtoError, Request, Response};
pub use sim::{run_sim, ChaosConfig, ConnSummary, OverloadPolicy, SimConfig, SimReport};
