//! The deterministic simulated-socket serving mode.
//!
//! Connections are **seeded arrival processes** on the virtual clock: each
//! connection is one coroutine lane of a worker (one [`sched::Engine`]
//! client), generating its own request bytes from a per-connection RNG
//! stream, feeding them through the real [`crate::proto::Decoder`] in
//! randomly split chunks, and serving each decoded request against its own
//! `ChimeClient` handle. Everything — arrival gaps, pipelined bursts,
//! chunk boundaries, chaos events — is a pure function of
//! [`SimConfig::seed`], so two runs produce byte-identical metrics, bench
//! JSON and trace JSONL.
//!
//! Backpressure is CQ-depth-driven: the worker's engine publishes its live
//! completion-queue depth through a [`sched::CqDepthGauge`]; when a
//! request finds the depth above [`SimConfig::cq_watermark`] the server
//! either **sheds** it (`-BUSY`, no index verbs — cheap, which is what
//! keeps decode capacity above the arrival rate under overload) or
//! **defers** it (bounded queue-wait polling before falling back to shed).

use std::sync::Arc;

use chime::{Chime, ChimeClient, ChimeConfig};
use dmem::{Endpoint, FaultPlan, FaultSession, Pool, QpStats, RangeIndex};
use obs::{Anomaly, AnomalyConfig, LatencyHist, MetricsSnapshot, OpProfile, Phase, TimeSeries};
use sched::{CqDepthGauge, Engine, EngineConfig, LaneBody};
use ycsb::KeySpace;

use crate::admission::Admission;
use crate::conn::{Conn, ConnCounters};
use crate::proto::Request;

/// What to do with a request that arrives over the CQ-depth watermark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverloadPolicy {
    /// Answer `-BUSY` immediately; no index verbs are issued.
    Shed,
    /// Poll the gauge for up to [`SimConfig::defer_rounds`] queue-wait
    /// intervals, then shed if the depth never came down.
    Defer,
}

/// Chaos knobs composed into the arrival processes (all seeded).
#[derive(Debug, Clone, Copy)]
pub struct ChaosConfig {
    /// Percent of connections that drop mid-pipeline: the byte stream
    /// truncates inside a frame and the connection vanishes.
    pub drop_pct: u32,
    /// Percent of inter-arrival gaps that become slow-reader stalls
    /// (responses queue undrained for `stall_ns`).
    pub stall_pct: u32,
    /// Stall duration, virtual ns.
    pub stall_ns: u64,
    /// Undrained-output limit: a connection whose out-buffer exceeds this
    /// while stalled is aborted (the slow-reader guard).
    pub out_limit: usize,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            drop_pct: 0,
            stall_pct: 0,
            stall_ns: 2_000_000,
            out_limit: 64 * 1024,
        }
    }
}

/// Configuration of one simulated serving run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Master seed; every stream derives from it.
    pub seed: u64,
    /// Total connections, split evenly across workers.
    pub conns: usize,
    /// Worker count; each worker is one engine client whose lanes are its
    /// connections (sharing one QP, hence one doorbell-batching domain).
    pub workers: usize,
    /// Request budget per connection.
    pub requests_per_conn: usize,
    /// Keys preloaded before serving starts (also the key range requests
    /// draw from).
    pub preload: u64,
    /// Value width of the index.
    pub value_size: usize,
    /// Connection-admission permits (shared by all workers).
    pub admit_limit: usize,
    /// Longest pipelined burst a connection emits back-to-back.
    pub pipeline_window: usize,
    /// CQ-depth watermark above which requests are shed/deferred.
    pub cq_watermark: u64,
    /// What to do over the watermark.
    pub policy: OverloadPolicy,
    /// Mean open-loop inter-arrival gap per connection, virtual ns.
    pub mean_gap_ns: u64,
    /// Modeled per-request decode cost, ns.
    pub decode_ns: u64,
    /// Modeled per-response encode/write cost, ns.
    pub respond_ns: u64,
    /// One queue-wait poll interval under [`OverloadPolicy::Defer`], ns.
    pub defer_poll_ns: u64,
    /// Queue-wait polls before a deferred request is shed anyway.
    pub defer_rounds: u32,
    /// Percent of arrivals that are pipelined bursts instead of single
    /// requests.
    pub pipeline_pct: u32,
    /// Per-client trace ring capacity (0 disables tracing).
    pub trace_events: usize,
    /// Chaos composition.
    pub chaos: ChaosConfig,
    /// Optional fault plan (e.g. fail-CAS) injected into every
    /// connection's endpoint.
    pub faults: Option<FaultPlan>,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 1,
            conns: 16,
            workers: 2,
            requests_per_conn: 64,
            preload: 4_096,
            value_size: 8,
            admit_limit: 1_024,
            pipeline_window: 8,
            cq_watermark: 12,
            policy: OverloadPolicy::Shed,
            mean_gap_ns: 8_000,
            decode_ns: 150,
            respond_ns: 200,
            defer_poll_ns: 1_000,
            defer_rounds: 4,
            pipeline_pct: 25,
            trace_events: 0,
            chaos: ChaosConfig::default(),
            faults: None,
        }
    }
}

/// Outcome of one connection's lane.
#[derive(Debug, Clone)]
pub struct ConnSummary {
    /// Connection id.
    pub id: u32,
    /// Whether admission ever granted a permit.
    pub admitted: bool,
    /// Per-connection protocol counters.
    pub counters: ConnCounters,
    /// Requests served to completion (index op + response).
    pub served: u64,
    /// Whether the connection dropped mid-pipeline (chaos).
    pub dropped: bool,
    /// Whether the slow-reader guard aborted the connection.
    pub aborted: bool,
    /// Bytes still undecoded when the connection ended (partial frame at a
    /// drop).
    pub discarded_bytes: u64,
    /// Decoder resyncs (recoverable bad lines skipped).
    pub resyncs: u64,
    /// This connection's phase/verb attribution profile.
    pub profile: OpProfile,
    /// Served-request latency histogram (arrival to response complete).
    pub hist: LatencyHist,
    /// The connection's virtual clock when it finished.
    pub end_ns: u64,
    /// Trace JSONL (when tracing is enabled).
    pub trace_jsonl: Option<String>,
    /// Windowed timeline of this connection's endpoint (fresh per
    /// connection, so the whole series is the connection's activity).
    pub timeline: TimeSeries,
}

/// Aggregated outcome of a simulated serving run.
#[derive(Debug)]
pub struct SimReport {
    /// Per-connection summaries, in connection order.
    pub conns: Vec<ConnSummary>,
    /// Requests served to completion.
    pub served: u64,
    /// Requests shed (`-BUSY`).
    pub shed: u64,
    /// Requests that waited in queue-wait before running (or shedding).
    pub deferred: u64,
    /// Connections refused admission.
    pub conns_refused: u64,
    /// Connections dropped mid-pipeline.
    pub conns_dropped: u64,
    /// Connections aborted by the slow-reader guard.
    pub conns_aborted: u64,
    /// Recoverable protocol errors answered `-ERR`.
    pub frame_errors: u64,
    /// Decoder resyncs.
    pub resyncs: u64,
    /// Longest connection clock — the run's makespan, ns.
    pub makespan_ns: u64,
    /// Served-request latency (arrival to response complete).
    pub hist: LatencyHist,
    /// Serve-layer phase/verb attribution accumulated across connections.
    pub profile: OpProfile,
    /// QP statistics merged across workers.
    pub qp: QpStats,
    /// The unified metrics registry for this run.
    pub metrics: MetricsSnapshot,
    /// Concatenated per-connection trace JSONL (empty when disabled).
    pub trace_jsonl: String,
    /// Windowed timeline merged over every connection: throughput,
    /// per-phase time, shed/served decisions and CQ-depth highs per
    /// 100 µs of virtual time.
    pub timeline: TimeSeries,
    /// Anomalies detected in the merged timeline (CQ saturation is armed
    /// at the run's configured watermark).
    pub anomalies: Vec<Anomaly>,
}

impl SimReport {
    /// Served throughput in Mops over the run's makespan.
    pub fn throughput_mops(&self) -> f64 {
        if self.makespan_ns == 0 {
            0.0
        } else {
            self.served as f64 * 1e3 / self.makespan_ns as f64
        }
    }
}

/// xorshift64* — one independent stream per connection.
struct Rng(u64);

impl Rng {
    fn new(seed: u64, stream: u64) -> Self {
        Rng(
            (seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15)).wrapping_mul(0x2545_F491_4F6C_DD1D)
                | 1,
        )
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }

    fn pct(&mut self, p: u32) -> bool {
        self.below(100) < p as u64
    }

    /// Exponential with the given mean (open-loop Poisson arrivals).
    fn exp(&mut self, mean_ns: u64) -> u64 {
        let u = (self.next() >> 11) as f64 / (1u64 << 53) as f64;
        let gap = -(mean_ns as f64) * (1.0 - u).max(1e-12).ln();
        gap as u64
    }
}

/// One generated arrival: a pipelined burst of requests and the wire bytes
/// that carry them.
fn gen_burst(rng: &mut Rng, cfg: &SimConfig, remaining: usize) -> (Vec<Request>, Vec<u8>) {
    let burst = if cfg.pipeline_pct > 0 && rng.pct(cfg.pipeline_pct) {
        (2 + rng.below(cfg.pipeline_window.max(2) as u64 - 1) as usize).min(remaining)
    } else {
        1
    };
    let mut reqs = Vec::with_capacity(burst);
    let mut wire = Vec::new();
    for _ in 0..burst {
        let key = KeySpace::key(rng.below(cfg.preload.max(1)));
        let req = match rng.below(100) {
            0..=79 => Request::Get(key),
            80..=94 => {
                let mut v = vec![0u8; cfg.value_size.clamp(1, 16)];
                let fill = rng.next().to_le_bytes();
                for (i, b) in v.iter_mut().enumerate() {
                    *b = fill[i % 8];
                }
                Request::Set(key, v)
            }
            95..=98 => Request::Del(key),
            _ => Request::Scan(key, 1 + rng.below(16) as usize),
        };
        req.encode(&mut wire);
        reqs.push(req);
    }
    (reqs, wire)
}

struct LaneCtx {
    cfg: SimConfig,
    id: u32,
    admission: Arc<Admission>,
    gauge: Arc<CqDepthGauge>,
}

/// The connection lane: admission, arrival loop, decode, backpressure,
/// execute, respond. Runs on a coroutine lane — every virtual-time advance
/// parks it at the scheduler.
fn run_conn(ctx: LaneCtx, mut client: ChimeClient) -> ConnSummary {
    let cfg = &ctx.cfg;
    let mut rng = Rng::new(cfg.seed, ctx.id as u64 + 1);
    let mut conn = Conn::new(ctx.id);
    let mut hist = LatencyHist::new();
    let mut served = 0u64;
    let mut dropped = false;
    let mut aborted = false;

    // Connect stagger: spread connection establishment over one mean gap.
    client.advance_phase(Phase::Other, rng.below(cfg.mean_gap_ns.max(1)));

    // Admission: try, then poll a bounded number of times, then give up.
    let mut admitted = ctx.admission.try_admit();
    if !admitted {
        for _ in 0..cfg.defer_rounds {
            client.advance_phase(Phase::Admission, cfg.defer_poll_ns);
            if ctx.admission.try_admit() {
                admitted = true;
                break;
            }
        }
    }
    if !admitted {
        return ConnSummary {
            id: ctx.id,
            admitted: false,
            counters: conn.counters.clone(),
            served: 0,
            dropped: false,
            aborted: false,
            discarded_bytes: 0,
            resyncs: 0,
            profile: client.profile().cloned().unwrap_or_default(),
            hist,
            end_ns: client.clock_ns(),
            timeline: client
                .telemetry()
                .map(|t| t.series.clone())
                .unwrap_or_default(),
            trace_jsonl: client.take_tracer().map(|t| t.to_jsonl()),
        };
    }

    // Chaos: does this connection drop mid-pipeline, and after how many
    // arrivals?
    let drop_at = if cfg.chaos.drop_pct > 0 && rng.pct(cfg.chaos.drop_pct) {
        Some(1 + rng.below(cfg.requests_per_conn.max(2) as u64 / 2))
    } else {
        None
    };

    let mut generated = 0usize;
    let mut arrivals = 0u64;
    'conn: while generated < cfg.requests_per_conn {
        // Open-loop arrival, possibly stretched into a slow-reader stall
        // (responses stay queued while the peer reads nothing).
        let stall = cfg.chaos.stall_pct > 0 && rng.pct(cfg.chaos.stall_pct);
        let gap = if stall {
            cfg.chaos.stall_ns
        } else {
            rng.exp(cfg.mean_gap_ns)
        };
        client.advance_phase(Phase::Other, gap);
        if !stall {
            conn.drain();
        } else if conn.out.len() > cfg.chaos.out_limit {
            aborted = true;
            break 'conn;
        }
        arrivals += 1;

        let (reqs, wire) = gen_burst(&mut rng, cfg, cfg.requests_per_conn - generated);
        generated += reqs.len();

        // Chaos: drop mid-pipeline — only a prefix of the burst's bytes
        // ever arrives, truncated inside a frame.
        if drop_at.is_some_and(|d| arrivals >= d) {
            let cut = (wire.len() / 2).max(1);
            conn.feed(&wire[..cut]);
            // Drain whatever whole frames made it, then vanish.
            while let Ok(Some(req)) = conn.next_request() {
                serve_one(cfg, &ctx.gauge, &mut client, &mut conn, &req, &mut hist, &mut served);
            }
            dropped = true;
            break 'conn;
        }

        // Feed the burst in seeded chunks to exercise incremental decode.
        let mut off = 0usize;
        while off < wire.len() {
            let chunk = (1 + rng.below(wire.len() as u64)) as usize;
            let end = (off + chunk).min(wire.len());
            conn.feed(&wire[off..end]);
            off = end;
            loop {
                match conn.next_request() {
                    Ok(Some(req)) => {
                        serve_one(
                            cfg, &ctx.gauge, &mut client, &mut conn, &req, &mut hist, &mut served,
                        );
                    }
                    Ok(None) => break,
                    Err(_) => {
                        // Fatal framing error: generated streams are well
                        // formed, so this is unreachable in practice; treat
                        // as an abort for safety.
                        aborted = true;
                        break 'conn;
                    }
                }
            }
        }
        let _ = reqs;
    }
    conn.drain();
    ctx.admission.release();
    ConnSummary {
        id: ctx.id,
        admitted: true,
        counters: conn.counters.clone(),
        served,
        dropped,
        aborted,
        discarded_bytes: conn.decoder.pending_bytes() as u64,
        resyncs: conn.decoder.resyncs(),
        profile: client.profile().cloned().unwrap_or_default(),
        hist,
        end_ns: client.clock_ns(),
        timeline: client
            .telemetry()
            .map(|t| t.series.clone())
            .unwrap_or_default(),
        trace_jsonl: client.take_tracer().map(|t| t.to_jsonl()),
    }
}

/// Serves one decoded request: decode charge, backpressure check, index
/// op, response.
fn serve_one(
    cfg: &SimConfig,
    gauge: &CqDepthGauge,
    client: &mut ChimeClient,
    conn: &mut Conn,
    req: &Request,
    hist: &mut LatencyHist,
    served: &mut u64,
) {
    let t0 = client.clock_ns();
    // The causal trace id is minted here, at request decode — the serve
    // entry point — and rides the op through the tree, the scheduler and
    // the queue pair: connection in the high half, request seq in the low.
    client.set_trace_id(((conn.id as u64 + 1) << 32) | conn.counters.requests);
    client.advance_phase(Phase::Decode, cfg.decode_ns);

    let depth = gauge.depth();
    let now = client.clock_ns();
    if let Some(tm) = client.telemetry_mut() {
        tm.series.cq_depth(now, depth);
    }
    let mut over = depth > cfg.cq_watermark;
    if over && cfg.policy == OverloadPolicy::Defer {
        conn.counters.deferred += 1;
        for _ in 0..cfg.defer_rounds {
            client.advance_phase(Phase::QueueWait, cfg.defer_poll_ns);
            over = gauge.depth() > cfg.cq_watermark;
            if !over {
                break;
            }
        }
    }
    if over {
        conn.respond(&crate::proto::Response::Busy);
        client.advance_phase(Phase::Respond, cfg.respond_ns);
        let now = client.clock_ns();
        if let Some(tm) = client.telemetry_mut() {
            tm.series.shed(now);
        }
        return;
    }

    let resp = crate::conn::execute(client, req, cfg.value_size);
    conn.respond(&resp);
    client.advance_phase(Phase::Respond, cfg.respond_ns);
    hist.record(client.clock_ns() - t0);
    *served += 1;
    let now = client.clock_ns();
    if let Some(tm) = client.telemetry_mut() {
        tm.series.served(now);
    }
}

/// Runs one deterministic serving simulation.
pub fn run_sim(cfg: &SimConfig) -> SimReport {
    assert!(cfg.conns > 0 && cfg.workers > 0, "need conns and workers");
    let pool = Pool::with_defaults(1, 256 << 20);
    let tree_cfg = ChimeConfig {
        span: 16,
        internal_span: 8,
        neighborhood: 4,
        value_size: cfg.value_size,
        cache_bytes: 1 << 22,
        hotspot_bytes: 1 << 18,
        trace_events: cfg.trace_events,
        ..Default::default()
    };
    let tree = Chime::create(&pool, tree_cfg, 0);
    let cn = tree.new_cn();
    {
        let mut loader = tree.client(&cn);
        let value = vec![0u8; cfg.value_size];
        for seq in 0..cfg.preload {
            loader
                .insert(KeySpace::key(seq), &value)
                .expect("preload insert");
        }
    }

    let admission = Arc::new(Admission::new(cfg.admit_limit));
    let session = Arc::new(FaultSession::new(
        cfg.faults.clone().unwrap_or_else(|| FaultPlan::seeded(cfg.seed)),
    ));
    let net = *pool.net();
    let per_worker = cfg.conns.div_ceil(cfg.workers);

    let mut conns: Vec<ConnSummary> = Vec::with_capacity(cfg.conns);
    let mut qp_total = QpStats::default();
    // Workers run sequentially — each is one engine client whose lanes are
    // its connections. Sequential workers keep the run single-threaded at
    // the top level; concurrency lives in the lanes.
    let mut next_id = 0u32;
    for _w in 0..cfg.workers {
        let lanes = per_worker.min(cfg.conns - next_id as usize);
        if lanes == 0 {
            break;
        }
        let gauge = CqDepthGauge::new();
        let engine = Engine::new(EngineConfig {
            lanes,
            qp: Default::default(),
        });
        let mut bodies: Vec<LaneBody<ConnSummary>> = Vec::with_capacity(lanes);
        for _l in 0..lanes {
            let id = next_id;
            next_id += 1;
            let ep = Endpoint::with_faults(Arc::clone(&pool), Arc::clone(&session), id);
            let client = tree.client_with_endpoint(&cn, ep);
            let ctx = LaneCtx {
                cfg: cfg.clone(),
                id,
                admission: Arc::clone(&admission),
                gauge: Arc::clone(&gauge),
            };
            bodies.push(Box::new(move || run_conn(ctx, client)));
        }
        let run = engine.run_client_observed(net, 1, bodies, gauge);
        qp_total.merge(&run.qp);
        for res in run.lanes {
            match res {
                Ok(s) => conns.push(s),
                Err(p) => std::panic::resume_unwind(p),
            }
        }
    }

    assemble(cfg, conns, qp_total)
}

/// Folds connection summaries into the run report and metrics registry.
fn assemble(cfg: &SimConfig, conns: Vec<ConnSummary>, qp: QpStats) -> SimReport {
    let mut hist = LatencyHist::new();
    let mut profile = OpProfile::new();
    let mut served = 0u64;
    let mut shed = 0u64;
    let mut deferred = 0u64;
    let mut refused = 0u64;
    let mut dropped = 0u64;
    let mut aborted = 0u64;
    let mut frame_errors = 0u64;
    let mut resyncs = 0u64;
    let mut makespan = 0u64;
    let mut requests = 0u64;
    let mut trace = String::new();
    let mut timeline = TimeSeries::default();
    for c in &conns {
        hist.merge(&c.hist);
        profile.merge(&c.profile);
        timeline.merge(&c.timeline);
        served += c.served;
        shed += c.counters.shed;
        deferred += c.counters.deferred;
        refused += u64::from(!c.admitted);
        dropped += u64::from(c.dropped);
        aborted += u64::from(c.aborted);
        frame_errors += c.counters.frame_errors;
        resyncs += c.resyncs;
        requests += c.counters.requests;
        makespan = makespan.max(c.end_ns);
        if let Some(t) = &c.trace_jsonl {
            trace.push_str(t);
        }
    }

    let mut m = MetricsSnapshot::new();
    m.counter("serve_requests_total", &[], requests);
    m.counter("serve_served_total", &[], served);
    m.counter("serve_shed_total", &[], shed);
    m.counter("serve_deferred_total", &[], deferred);
    m.counter("serve_conns_total", &[], conns.len() as u64);
    m.counter("serve_conns_refused_total", &[], refused);
    m.counter("serve_conns_dropped_total", &[], dropped);
    m.counter("serve_conns_aborted_total", &[], aborted);
    m.counter("serve_frame_errors_total", &[], frame_errors);
    m.counter("serve_resyncs_total", &[], resyncs);
    m.counter("serve_qp_posted_total", &[], qp.posted);
    m.counter("serve_qp_doorbells_total", &[], qp.doorbells);
    m.gauge(
        "serve_throughput_mops",
        &[],
        if makespan == 0 {
            0.0
        } else {
            served as f64 * 1e3 / makespan as f64
        },
    );
    m.histogram("serve_latency", &[], hist.summary());
    for p in Phase::ALL {
        m.counter("serve_phase_ns", &[("phase", p.as_str())], profile.phase(p).ns);
    }
    for c in &conns {
        let id = c.id.to_string();
        let labels: &[(&str, &str)] = &[("conn", id.as_str())];
        m.counter("serve_conn_requests", labels, c.counters.requests);
        m.counter("serve_conn_responses", labels, c.counters.responses);
        m.counter("serve_conn_shed", labels, c.counters.shed);
        m.counter("serve_conn_served", labels, c.served);
    }
    // The serve layer arms CQ-saturation detection at its own watermark:
    // a window whose observed depth reached the shed threshold is exactly
    // the interval a tail-latency excursion should be blamed on.
    let anomalies = obs::detect(
        &timeline,
        &AnomalyConfig {
            cq_saturation: cfg.cq_watermark.max(1),
            ..AnomalyConfig::default()
        },
    );
    m.counter("anomalies_total", &[], anomalies.len() as u64);

    SimReport {
        served,
        shed,
        deferred,
        conns_refused: refused,
        conns_dropped: dropped,
        conns_aborted: aborted,
        frame_errors,
        resyncs,
        makespan_ns: makespan,
        hist,
        profile,
        qp,
        metrics: m,
        trace_jsonl: trace,
        timeline,
        anomalies,
        conns,
    }
}
