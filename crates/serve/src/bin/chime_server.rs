//! `chime-server` — the real-TCP serving binary.
//!
//! ```text
//! chime-server [--addr 127.0.0.1:7979] [--preload N] [--value-size B]
//!              [--admit N] [--metrics-out PATH] [--smoke]
//! ```
//!
//! `--metrics-out PATH` writes the server's counters at shutdown as a
//! Prometheus exposition file at `PATH` and a JSON
//! [`obs::MetricsSnapshot`] document at `PATH.json`.
//!
//! `--smoke` starts the server on a free port, drives an in-process load
//! generator against it, checks the responses (including that a requested
//! metrics file came out non-empty), and exits — the self-test behind
//! `make serve-smoke`.

use std::sync::atomic::Ordering;

use obs::MetricsSnapshot;
use serve::tcp::{run_load, Server, TcpCounters, TcpConfig};

/// Snapshots the live counters into the unified metrics registry.
fn snapshot(counters: &TcpCounters) -> MetricsSnapshot {
    let mut m = MetricsSnapshot::new();
    m.counter(
        "serve_conns_total",
        &[],
        counters.conns.load(Ordering::Relaxed),
    );
    m.counter(
        "serve_conns_refused_total",
        &[],
        counters.conns_refused.load(Ordering::Relaxed),
    );
    m.counter(
        "serve_requests_total",
        &[],
        counters.requests.load(Ordering::Relaxed),
    );
    m.counter(
        "serve_frame_errors_total",
        &[],
        counters.frame_errors.load(Ordering::Relaxed),
    );
    m
}

/// Writes `PATH` (Prometheus exposition) and `PATH.json` (JSON snapshot).
fn write_metrics(path: &str, m: &MetricsSnapshot) {
    std::fs::write(path, m.to_prometheus()).expect("write metrics");
    std::fs::write(format!("{path}.json"), m.to_json()).expect("write metrics json");
}

fn arg_u64(args: &[String], name: &str, default: u64) -> u64 {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn arg_str(args: &[String], name: &str, default: &str) -> String {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| default.to_string())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let cfg = TcpConfig {
        addr: arg_str(
            &args,
            "--addr",
            if smoke { "127.0.0.1:0" } else { "127.0.0.1:7979" },
        ),
        preload: arg_u64(&args, "--preload", 10_000),
        value_size: arg_u64(&args, "--value-size", 8) as usize,
        admit_limit: arg_u64(&args, "--admit", 64) as usize,
    };
    let preload = cfg.preload;
    let metrics_out = args
        .iter()
        .position(|a| a == "--metrics-out")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let server = Server::start(cfg).expect("bind server");
    println!("chime-server listening on {}", server.addr());

    if smoke {
        let addr = server.addr().to_string();
        let rep = run_load(&addr, 4, 500, 42, preload).expect("loadgen");
        println!(
            "smoke: sent={} ok={} busy={} err={} elapsed_us={}",
            rep.sent, rep.ok, rep.busy, rep.errors, rep.elapsed_us
        );
        let served = server.counters().requests.load(Ordering::Relaxed);
        let m = snapshot(server.counters());
        server.stop();
        assert_eq!(rep.sent, 4 * 500, "every request sent");
        assert_eq!(rep.ok + rep.busy + rep.errors, rep.sent, "every request answered");
        assert!(rep.ok > 0, "some requests must succeed");
        assert_eq!(served, rep.sent, "server saw every request");
        if let Some(path) = &metrics_out {
            write_metrics(path, &m);
            println!("wrote {path} and {path}.json");
            let prom = std::fs::read_to_string(path).expect("read metrics back");
            let json = std::fs::read_to_string(format!("{path}.json")).expect("read json back");
            assert!(
                prom.contains("serve_requests_total"),
                "metrics exposition must be non-empty"
            );
            assert!(!json.trim().is_empty(), "metrics JSON must be non-empty");
        }
        println!("serve-smoke OK");
        return;
    }

    // Serve until killed; on SIGINT/SIGTERM the process dies without
    // unwinding, so a periodic refresh keeps --metrics-out current.
    loop {
        std::thread::park_timeout(std::time::Duration::from_secs(5));
        if let Some(path) = &metrics_out {
            write_metrics(path, &snapshot(server.counters()));
        }
    }
}
