//! `chime-server` — the real-TCP serving binary.
//!
//! ```text
//! chime-server [--addr 127.0.0.1:7979] [--preload N] [--value-size B]
//!              [--admit N] [--smoke]
//! ```
//!
//! `--smoke` starts the server on a free port, drives an in-process load
//! generator against it, checks the responses, and exits — the self-test
//! behind `make serve-smoke`.

use std::sync::atomic::Ordering;

use serve::tcp::{run_load, Server, TcpConfig};

fn arg_u64(args: &[String], name: &str, default: u64) -> u64 {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn arg_str(args: &[String], name: &str, default: &str) -> String {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| default.to_string())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let cfg = TcpConfig {
        addr: arg_str(
            &args,
            "--addr",
            if smoke { "127.0.0.1:0" } else { "127.0.0.1:7979" },
        ),
        preload: arg_u64(&args, "--preload", 10_000),
        value_size: arg_u64(&args, "--value-size", 8) as usize,
        admit_limit: arg_u64(&args, "--admit", 64) as usize,
    };
    let preload = cfg.preload;
    let server = Server::start(cfg).expect("bind server");
    println!("chime-server listening on {}", server.addr());

    if smoke {
        let addr = server.addr().to_string();
        let rep = run_load(&addr, 4, 500, 42, preload).expect("loadgen");
        println!(
            "smoke: sent={} ok={} busy={} err={} elapsed_us={}",
            rep.sent, rep.ok, rep.busy, rep.errors, rep.elapsed_us
        );
        let served = server.counters().requests.load(Ordering::Relaxed);
        server.stop();
        assert_eq!(rep.sent, 4 * 500, "every request sent");
        assert_eq!(rep.ok + rep.busy + rep.errors, rep.sent, "every request answered");
        assert!(rep.ok > 0, "some requests must succeed");
        assert_eq!(served, rep.sent, "server saw every request");
        println!("serve-smoke OK");
        return;
    }

    // Serve until killed.
    loop {
        std::thread::park();
    }
}
