//! `chime-loadgen` — a small pipelined load generator for `chime-server`.
//!
//! ```text
//! chime-loadgen [--addr 127.0.0.1:7979] [--conns N] [--requests N]
//!               [--seed S] [--keys N]
//! ```

use serve::tcp::run_load;

fn arg_u64(args: &[String], name: &str, default: u64) -> u64 {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let addr = args
        .iter()
        .position(|a| a == "--addr")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "127.0.0.1:7979".to_string());
    let conns = arg_u64(&args, "--conns", 4) as usize;
    let requests = arg_u64(&args, "--requests", 10_000) as usize;
    let seed = arg_u64(&args, "--seed", 42);
    let keys = arg_u64(&args, "--keys", 10_000);

    let rep = run_load(&addr, conns, requests, seed, keys).expect("loadgen run");
    let total_us = rep.elapsed_us.max(1);
    println!(
        "sent={} ok={} busy={} err={} elapsed_us={} rate_kops={:.1}",
        rep.sent,
        rep.ok,
        rep.busy,
        rep.errors,
        rep.elapsed_us,
        rep.sent as f64 * 1e3 / total_us as f64
    );
}
