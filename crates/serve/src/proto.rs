//! The RESP-like wire protocol: request framing and response encoding.
//!
//! Requests arrive either as **inline commands** (`GET 42\r\n`) or as
//! **array frames** in the Redis serialization style
//! (`*3\r\n$3\r\nSET\r\n$2\r\n42\r\n$5\r\nhello\r\n`). Both forms may be
//! pipelined back-to-back on one connection; the [`Decoder`] is fully
//! incremental, so frames split at arbitrary byte boundaries reassemble
//! identically.
//!
//! Error handling is two-tier, and deterministic:
//!
//! * **recoverable** — an unknown inline command or a malformed inline
//!   argument consumes exactly one line and resynchronizes at the next
//!   `\r\n`; the server answers `-ERR ...` and keeps the connection;
//! * **fatal** — structural garbage inside an array frame, or any length
//!   field beyond the fixed limits, poisons the stream (there is no safe
//!   resync point); the server answers `-ERR ...` once and closes.
//!
//! Keys are decimal `u64`; values are opaque byte strings.

use std::fmt;

/// Longest accepted bulk string (value payload), bytes.
pub const MAX_BULK: usize = 64 * 1024;
/// Most arguments in one array frame.
pub const MAX_ARGS: usize = 8;
/// Longest accepted inline line (excluding `\r\n`), bytes.
pub const MAX_INLINE: usize = 1024;
/// Largest item count honored by `SCAN`.
pub const MAX_SCAN: usize = 1024;

/// One decoded client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Point lookup.
    Get(u64),
    /// Insert-or-overwrite.
    Set(u64, Vec<u8>),
    /// Delete.
    Del(u64),
    /// Range scan: up to `count` items with keys `>= start`.
    Scan(u64, usize),
    /// Liveness probe; answered without touching the index.
    Ping,
}

impl Request {
    /// Encodes this request as an inline command line (where the value
    /// payload permits) or as an array frame otherwise.
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Request::Get(k) => {
                out.extend_from_slice(format!("GET {k}\r\n").as_bytes());
            }
            Request::Del(k) => {
                out.extend_from_slice(format!("DEL {k}\r\n").as_bytes());
            }
            Request::Scan(start, count) => {
                out.extend_from_slice(format!("SCAN {start} {count}\r\n").as_bytes());
            }
            Request::Ping => out.extend_from_slice(b"PING\r\n"),
            Request::Set(k, v) => {
                // Array form: the value is opaque bytes.
                let key = k.to_string();
                out.extend_from_slice(b"*3\r\n$3\r\nSET\r\n");
                out.extend_from_slice(format!("${}\r\n", key.len()).as_bytes());
                out.extend_from_slice(key.as_bytes());
                out.extend_from_slice(b"\r\n");
                out.extend_from_slice(format!("${}\r\n", v.len()).as_bytes());
                out.extend_from_slice(v);
                out.extend_from_slice(b"\r\n");
            }
        }
    }
}

/// One server response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// `+OK\r\n`
    Ok,
    /// `$len\r\n<bytes>\r\n`
    Value(Vec<u8>),
    /// `$-1\r\n` — key absent.
    Nil,
    /// `:n\r\n` — e.g. DEL result.
    Int(i64),
    /// `*2n\r\n` of key/value bulk strings — SCAN result.
    Pairs(Vec<(u64, Vec<u8>)>),
    /// `-ERR <msg>\r\n` — recoverable protocol or command error.
    Err(String),
    /// `-BUSY server overloaded\r\n` — shed by backpressure/admission.
    Busy,
    /// `+PONG\r\n`
    Pong,
}

impl Response {
    /// Appends the wire encoding of this response to `out`, returning the
    /// number of bytes written.
    pub fn encode(&self, out: &mut Vec<u8>) -> usize {
        let before = out.len();
        match self {
            Response::Ok => out.extend_from_slice(b"+OK\r\n"),
            Response::Pong => out.extend_from_slice(b"+PONG\r\n"),
            Response::Nil => out.extend_from_slice(b"$-1\r\n"),
            Response::Int(n) => out.extend_from_slice(format!(":{n}\r\n").as_bytes()),
            Response::Value(v) => {
                out.extend_from_slice(format!("${}\r\n", v.len()).as_bytes());
                out.extend_from_slice(v);
                out.extend_from_slice(b"\r\n");
            }
            Response::Pairs(items) => {
                out.extend_from_slice(format!("*{}\r\n", items.len() * 2).as_bytes());
                for (k, v) in items {
                    let key = k.to_string();
                    out.extend_from_slice(format!("${}\r\n", key.len()).as_bytes());
                    out.extend_from_slice(key.as_bytes());
                    out.extend_from_slice(b"\r\n");
                    out.extend_from_slice(format!("${}\r\n", v.len()).as_bytes());
                    out.extend_from_slice(v);
                    out.extend_from_slice(b"\r\n");
                }
            }
            Response::Err(msg) => {
                out.extend_from_slice(b"-ERR ");
                out.extend_from_slice(msg.as_bytes());
                out.extend_from_slice(b"\r\n");
            }
            Response::Busy => out.extend_from_slice(b"-BUSY server overloaded\r\n"),
        }
        out.len() - before
    }
}

/// Why a frame failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// Unknown command or malformed inline argument. The offending line
    /// was consumed; the stream resynchronizes at the next line.
    BadCommand(String),
    /// Structural garbage inside an array frame — no safe resync point.
    BadFrame(String),
    /// A declared length exceeds [`MAX_BULK`] / [`MAX_ARGS`] /
    /// [`MAX_INLINE`].
    FrameTooLarge(String),
}

impl ProtoError {
    /// Whether the connection must close (no resync point exists).
    pub fn is_fatal(&self) -> bool {
        !matches!(self, ProtoError::BadCommand(_))
    }

    /// The human-readable detail carried by the error.
    pub fn detail(&self) -> &str {
        match self {
            ProtoError::BadCommand(s) | ProtoError::BadFrame(s) | ProtoError::FrameTooLarge(s) => s,
        }
    }
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::BadCommand(s) => write!(f, "bad command: {s}"),
            ProtoError::BadFrame(s) => write!(f, "bad frame: {s}"),
            ProtoError::FrameTooLarge(s) => write!(f, "frame too large: {s}"),
        }
    }
}

/// The incremental frame decoder for one connection.
///
/// Feed raw bytes with [`Decoder::feed`]; pull complete requests with
/// [`Decoder::next`]. `Ok(None)` means "need more bytes" — nothing is
/// consumed until a frame (or a recoverable bad line) is complete, so
/// chunk boundaries never change the decoded request sequence.
#[derive(Debug, Default)]
pub struct Decoder {
    buf: Vec<u8>,
    pos: usize,
    /// Times a recoverable bad line was skipped (resyncs).
    resyncs: u64,
}

impl Decoder {
    /// Creates an empty decoder.
    pub fn new() -> Self {
        Decoder::default()
    }

    /// Appends raw connection bytes.
    pub fn feed(&mut self, bytes: &[u8]) {
        // Compact lazily so pipelined streams don't grow without bound.
        if self.pos > 0 && (self.pos >= self.buf.len() || self.pos > 4096) {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed (e.g. a partial frame at
    /// connection drop).
    pub fn pending_bytes(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Recoverable bad lines skipped so far.
    pub fn resyncs(&self) -> u64 {
        self.resyncs
    }

    /// Decodes the next complete request, if one is buffered.
    ///
    /// * `Ok(Some(req))` — one frame consumed;
    /// * `Ok(None)` — incomplete; feed more bytes;
    /// * `Err(e)` with `e.is_fatal()` — stream poisoned, close;
    /// * `Err(e)` otherwise — one line consumed, stream resynced.
    pub fn try_next(&mut self) -> Result<Option<Request>, ProtoError> {
        loop {
            let rest = &self.buf[self.pos..];
            let Some(&first) = rest.first() else {
                return Ok(None);
            };
            if first == b'*' {
                return self.next_array();
            }
            // Inline command: one CRLF-terminated line.
            let Some(eol) = find_crlf(rest) else {
                if rest.len() > MAX_INLINE {
                    return Err(ProtoError::FrameTooLarge(format!(
                        "inline line exceeds {MAX_INLINE} bytes without CRLF"
                    )));
                }
                return Ok(None);
            };
            if eol > MAX_INLINE {
                // Terminated but oversized: fatal (the sender's framing is
                // not trustworthy).
                return Err(ProtoError::FrameTooLarge(format!(
                    "inline line of {eol} bytes exceeds {MAX_INLINE}"
                )));
            }
            let line = rest[..eol].to_vec();
            self.pos += eol + 2;
            if line.iter().all(|b| b.is_ascii_whitespace()) {
                continue; // empty line between pipelined commands
            }
            let parts: Vec<&[u8]> = line
                .split(|&b| b == b' ' || b == b'\t')
                .filter(|p| !p.is_empty())
                .collect();
            match parse_command(&parts) {
                Ok(req) => return Ok(Some(req)),
                Err(msg) => {
                    self.resyncs += 1;
                    return Err(ProtoError::BadCommand(msg));
                }
            }
        }
    }

    /// Decodes an array frame starting at `self.pos` (which holds `*`).
    fn next_array(&mut self) -> Result<Option<Request>, ProtoError> {
        let rest = &self.buf[self.pos..];
        let mut cur = 0usize;
        let Some(eol) = find_crlf(&rest[cur..]) else {
            return Ok(None);
        };
        let n = ascii_int(&rest[cur + 1..cur + eol])
            .ok_or_else(|| ProtoError::BadFrame("array header is not an integer".into()))?;
        if n <= 0 || n as usize > MAX_ARGS {
            return Err(ProtoError::FrameTooLarge(format!(
                "array of {n} args (limit {MAX_ARGS})"
            )));
        }
        cur += eol + 2;
        let mut args: Vec<Vec<u8>> = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let Some(eol) = find_crlf(&rest[cur..]) else {
                return Ok(None);
            };
            if rest[cur] != b'$' {
                return Err(ProtoError::BadFrame("expected bulk-string header `$`".into()));
            }
            let len = ascii_int(&rest[cur + 1..cur + eol])
                .ok_or_else(|| ProtoError::BadFrame("bulk length is not an integer".into()))?;
            if len < 0 || len as usize > MAX_BULK {
                return Err(ProtoError::FrameTooLarge(format!(
                    "bulk string of {len} bytes (limit {MAX_BULK})"
                )));
            }
            cur += eol + 2;
            let len = len as usize;
            if rest.len() < cur + len + 2 {
                return Ok(None);
            }
            if &rest[cur + len..cur + len + 2] != b"\r\n" {
                return Err(ProtoError::BadFrame("bulk string not CRLF-terminated".into()));
            }
            args.push(rest[cur..cur + len].to_vec());
            cur += len + 2;
        }
        self.pos += cur;
        let parts: Vec<&[u8]> = args.iter().map(|a| a.as_slice()).collect();
        match parse_command(&parts) {
            Ok(req) => Ok(Some(req)),
            Err(msg) => {
                self.resyncs += 1;
                Err(ProtoError::BadCommand(msg))
            }
        }
    }
}

/// Position of the first `\r\n` in `b`, if complete.
fn find_crlf(b: &[u8]) -> Option<usize> {
    b.windows(2).position(|w| w == b"\r\n")
}

/// Parses a signed ASCII decimal integer (no leading `+`, no spaces).
fn ascii_int(b: &[u8]) -> Option<i64> {
    if b.is_empty() || b.len() > 19 + 1 {
        return None;
    }
    let (neg, digits) = match b[0] {
        b'-' => (true, &b[1..]),
        _ => (false, b),
    };
    if digits.is_empty() || !digits.iter().all(|c| c.is_ascii_digit()) {
        return None;
    }
    let mut v: i64 = 0;
    for &c in digits {
        v = v.checked_mul(10)?.checked_add((c - b'0') as i64)?;
    }
    Some(if neg { -v } else { v })
}

fn parse_key(b: &[u8]) -> Result<u64, String> {
    std::str::from_utf8(b)
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .ok_or_else(|| format!("bad key {:?}", String::from_utf8_lossy(b)))
}

/// Maps a split command (inline words or array args) to a [`Request`].
fn parse_command(parts: &[&[u8]]) -> Result<Request, String> {
    let cmd = parts.first().copied().unwrap_or(b"");
    let upper: Vec<u8> = cmd.iter().map(|b| b.to_ascii_uppercase()).collect();
    match (upper.as_slice(), parts.len()) {
        (b"PING", 1) => Ok(Request::Ping),
        (b"GET", 2) => Ok(Request::Get(parse_key(parts[1])?)),
        (b"DEL", 2) => Ok(Request::Del(parse_key(parts[1])?)),
        (b"SET", 3) => Ok(Request::Set(parse_key(parts[1])?, parts[2].to_vec())),
        (b"SCAN", 3) => {
            let start = parse_key(parts[1])?;
            let count = std::str::from_utf8(parts[2])
                .ok()
                .and_then(|s| s.parse::<usize>().ok())
                .ok_or_else(|| "bad scan count".to_string())?;
            Ok(Request::Scan(start, count.min(MAX_SCAN)))
        }
        _ => Err(format!(
            "unknown command {:?}/{}",
            String::from_utf8_lossy(cmd),
            parts.len()
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decode_all(bytes: &[u8]) -> (Vec<Request>, Vec<ProtoError>) {
        let mut d = Decoder::new();
        d.feed(bytes);
        let mut reqs = Vec::new();
        let mut errs = Vec::new();
        loop {
            match d.try_next() {
                Ok(Some(r)) => reqs.push(r),
                Ok(None) => break,
                Err(e) => {
                    let fatal = e.is_fatal();
                    errs.push(e);
                    if fatal {
                        break;
                    }
                }
            }
        }
        (reqs, errs)
    }

    #[test]
    fn inline_commands_decode() {
        let (reqs, errs) = decode_all(b"GET 42\r\nDEL 7\r\nSCAN 10 50\r\nPING\r\n");
        assert!(errs.is_empty());
        assert_eq!(
            reqs,
            vec![
                Request::Get(42),
                Request::Del(7),
                Request::Scan(10, 50),
                Request::Ping
            ]
        );
    }

    #[test]
    fn array_frames_decode() {
        let (reqs, errs) = decode_all(b"*3\r\n$3\r\nSET\r\n$2\r\n42\r\n$5\r\nhello\r\n");
        assert!(errs.is_empty());
        assert_eq!(reqs, vec![Request::Set(42, b"hello".to_vec())]);
    }

    #[test]
    fn encode_decode_round_trips() {
        let reqs = vec![
            Request::Get(1),
            Request::Set(2, vec![0xAB; 32]),
            Request::Del(3),
            Request::Scan(4, 9),
            Request::Ping,
        ];
        let mut wire = Vec::new();
        for r in &reqs {
            r.encode(&mut wire);
        }
        let (decoded, errs) = decode_all(&wire);
        assert!(errs.is_empty());
        assert_eq!(decoded, reqs);
    }

    #[test]
    fn partial_frames_wait_for_more_bytes() {
        let mut d = Decoder::new();
        d.feed(b"GET 4");
        assert_eq!(d.try_next().unwrap(), None);
        d.feed(b"2\r\nGE");
        assert_eq!(d.try_next().unwrap(), Some(Request::Get(42)));
        assert_eq!(d.try_next().unwrap(), None);
        d.feed(b"T 7\r\n");
        assert_eq!(d.try_next().unwrap(), Some(Request::Get(7)));
        assert_eq!(d.pending_bytes(), 0);
    }

    #[test]
    fn chunk_boundaries_do_not_change_the_stream() {
        let mut wire = Vec::new();
        for r in [
            Request::Set(9, b"abcdef".to_vec()),
            Request::Get(9),
            Request::Scan(0, 3),
        ] {
            r.encode(&mut wire);
        }
        let (whole, _) = decode_all(&wire);
        for cut in 1..wire.len() {
            let mut d = Decoder::new();
            d.feed(&wire[..cut]);
            let mut got = Vec::new();
            while let Ok(Some(r)) = d.try_next() {
                got.push(r);
            }
            d.feed(&wire[cut..]);
            while let Ok(Some(r)) = d.try_next() {
                got.push(r);
            }
            assert_eq!(got, whole, "split at {cut}");
        }
    }

    #[test]
    fn bad_inline_line_resyncs() {
        let (reqs, errs) = decode_all(b"FROB 1\r\nGET 5\r\n");
        assert_eq!(reqs, vec![Request::Get(5)]);
        assert_eq!(errs.len(), 1);
        assert!(!errs[0].is_fatal());
    }

    #[test]
    fn oversized_and_structural_errors_are_fatal() {
        let big = format!("*2\r\n$3\r\nGET\r\n${}\r\n", MAX_BULK + 1);
        let (_, errs) = decode_all(big.as_bytes());
        assert!(errs[0].is_fatal());
        let (_, errs) = decode_all(b"*2\r\nnope\r\n");
        assert!(errs[0].is_fatal());
        let long = vec![b'A'; MAX_INLINE + 2];
        let (_, errs) = decode_all(&long);
        assert!(errs[0].is_fatal());
    }

    #[test]
    fn responses_encode_stably() {
        let mut out = Vec::new();
        Response::Ok.encode(&mut out);
        Response::Nil.encode(&mut out);
        Response::Int(1).encode(&mut out);
        Response::Value(b"xy".to_vec()).encode(&mut out);
        Response::Pairs(vec![(7, b"v".to_vec())]).encode(&mut out);
        Response::Busy.encode(&mut out);
        assert_eq!(
            out,
            b"+OK\r\n$-1\r\n:1\r\n$2\r\nxy\r\n*2\r\n$1\r\n7\r\n$1\r\nv\r\n-BUSY server overloaded\r\n"
        );
    }
}
