//! End-to-end tests for `chime-lint`: every rule is proven twice — once
//! by a firing fixture and once by a suppressed twin — plus JSON
//! determinism and a self-check that the repo itself lints clean.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

use analyzer::report::Report;

fn fixtures_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn lint_fixture(rel: &str) -> Report {
    let root = fixtures_root();
    analyzer::lint_files(&root, &[root.join(rel)]).unwrap()
}

/// Asserts `rel` produces exactly `expected` findings, all of rule `rule`.
fn assert_fires(rel: &str, rule: &str, expected: usize) -> Report {
    let r = lint_fixture(rel);
    assert_eq!(
        r.findings.len(),
        expected,
        "{rel}: expected {expected} findings, got:\n{}",
        r.to_text()
    );
    for f in &r.findings {
        assert_eq!(f.rule, rule, "{rel}: unexpected rule in:\n{}", r.to_text());
    }
    r
}

/// Asserts `rel` lints clean because `honored` suppressions applied.
fn assert_suppressed(rel: &str, honored: usize) {
    let r = lint_fixture(rel);
    assert!(
        r.findings.is_empty(),
        "{rel}: expected clean, got:\n{}",
        r.to_text()
    );
    assert_eq!(
        r.suppressions_honored, honored,
        "{rel}: wrong number of honored suppressions"
    );
}

#[test]
fn determinism_fires_and_suppresses() {
    let r = assert_fires("firing/determinism.rs", "determinism", 6);
    let msgs: Vec<&str> = r.findings.iter().map(|f| f.message.as_str()).collect();
    assert!(msgs.iter().any(|m| m.contains("Instant::now")));
    assert!(msgs.iter().any(|m| m.contains("SystemTime::now")));
    assert!(msgs.iter().any(|m| m.contains("thread::sleep")));
    assert!(msgs.iter().any(|m| m.contains("thread_rng")));
    assert!(msgs.iter().any(|m| m.contains(".keys()")));
    assert!(msgs.iter().any(|m| m.contains("`for` over")));
    assert_suppressed("suppressed/determinism.rs", 4);
}

#[test]
fn phase_balance_fires_and_suppresses() {
    let r = assert_fires("firing/phase.rs", "phase-balance", 2);
    assert!(r.findings[0].message.contains("opens 1 phase frame(s) but closes 0"));
    assert!(r.findings[1].message.contains("early exit leaks the open frame"));
    assert_suppressed("suppressed/phase.rs", 2);
}

#[test]
fn lock_discipline_fires_and_suppresses() {
    let r = assert_fires("firing/lock_discipline.rs", "lock-discipline", 2);
    assert!(r.findings.iter().any(|f| f.message.contains("never releases")));
    assert!(r.findings.iter().any(|f| f.message.contains("without invoking the seeded backoff")));
    assert_suppressed("suppressed/lock_discipline.rs", 2);
}

#[test]
fn unsafe_comment_fires_and_suppresses() {
    let r = assert_fires("firing/unsafe_comment.rs", "unsafe-comment", 1);
    assert_eq!(r.findings[0].line, 5, "only the unjustified block fires");
    assert_suppressed("suppressed/unsafe_comment.rs", 1);
}

#[test]
fn lockword_layout_fires_and_suppresses() {
    let r = assert_fires("firing/lockword.rs", "lockword-layout", 2);
    assert!(r.findings.iter().any(|f| f.message.contains("overlap")));
    assert!(r.findings.iter().any(|f| f.message.contains("documented layout")));
    assert_suppressed("suppressed/lockword.rs", 2);
}

#[test]
fn verb_protocol_fires_and_suppresses() {
    let r = assert_fires("firing/verb_protocol.rs", "verb-protocol", 1);
    assert!(r.findings[0].message.contains("neither the acquire protocol"));
    assert_suppressed("suppressed/verb_protocol.rs", 1);
}

#[test]
fn mask_consistency_fires_and_suppresses() {
    let r = assert_fires("firing/mask_consistency.rs", "mask-consistency", 2);
    assert!(r.findings.iter().any(|f| f.message.contains("cmask 0xffffffff")));
    assert!(r.findings.iter().any(|f| f.message.contains("smask 0xff00")));
    assert_suppressed("suppressed/mask_consistency.rs", 1);
}

#[test]
fn lock_order_fires_and_suppresses() {
    let r = assert_fires("firing/lock_order.rs", "lock-order", 1);
    assert!(r.findings[0].message.contains("local-slot → leaf-lock"));
    assert!(r.findings[0].message.contains("leaf-lock → local-slot"));
    assert_suppressed("suppressed/lock_order.rs", 1);
}

#[test]
fn cq_discipline_fires_and_suppresses() {
    let r = assert_fires("firing/cq.rs", "cq-discipline", 2);
    assert!(r.findings[0].message.contains("posts 1 WQE(s) but polls 0"));
    assert!(r.findings[1].message.contains("abandons the outstanding completion"));
    assert_suppressed("suppressed/cq.rs", 2);
}

#[test]
fn async_block_fires_and_suppresses() {
    let r = assert_fires("firing/async_block.rs", "async-block", 3);
    let msgs: Vec<&str> = r.findings.iter().map(|f| f.message.as_str()).collect();
    assert!(msgs.iter().any(|m| m.contains("blocking `.lock()`")));
    assert!(msgs.iter().any(|m| m.contains("Condvar::wait")));
    assert_suppressed("suppressed/async_block.rs", 3);
}

#[test]
fn epoch_discipline_fires_and_suppresses() {
    let r = assert_fires("firing/epoch.rs", "epoch-discipline", 1);
    assert!(r.findings[0].message.contains("without the partition lock"));
    assert_eq!(r.findings[0].line, 6, "the locked twin must not fire");
    assert_suppressed("suppressed/epoch.rs", 1);
}

#[test]
fn trace_context_fires_and_suppresses() {
    let r = assert_fires("firing/trace_context.rs", "trace-context", 3);
    let msgs: Vec<&str> = r.findings.iter().map(|f| f.message.as_str()).collect();
    assert!(msgs.iter().any(|m| m.contains("opens 1 op span(s) but closes 0")));
    assert!(msgs.iter().any(|m| m.contains("early exit leaks the open span")));
    assert!(msgs.iter().any(|m| m.contains("mints a fresh trace id inside an open span")));
    assert_suppressed("suppressed/trace_context.rs", 3);
}

#[test]
fn malformed_suppressions_are_findings() {
    let r = assert_fires("firing/suppression.rs", "suppression", 3);
    assert_eq!(r.suppressions_honored, 0);
}

#[test]
fn every_rule_has_fixture_coverage() {
    // The registry and this test suite must not drift apart: each rule id
    // appears in the firing corpus's findings.
    let root = fixtures_root().join("firing");
    let files = analyzer::collect_rs_files(&root).unwrap();
    let r = analyzer::lint_files(&fixtures_root(), &files).unwrap();
    let seen: BTreeSet<&str> = r.findings.iter().map(|f| f.rule).collect();
    for rule in analyzer::rules::RULES {
        assert!(seen.contains(rule), "rule `{rule}` has no firing fixture");
    }
}

#[test]
fn json_report_is_byte_identical_across_runs() {
    let root = fixtures_root();
    let files = analyzer::collect_rs_files(&root).unwrap();
    let a = analyzer::lint_files(&root, &files).unwrap().to_json();
    let b = analyzer::lint_files(&root, &files).unwrap().to_json();
    assert_eq!(a, b, "lint JSON must be byte-deterministic");
    assert!(a.contains("\"tool\""), "report carries its schema header");
}

#[test]
fn repo_is_lint_clean() {
    let repo_root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let r = analyzer::lint_workspace(&repo_root).unwrap();
    assert!(
        r.findings.is_empty(),
        "the repo must lint clean (suppress with a reasoned `chime-lint: allow(...)` if intentional):\n{}",
        r.to_text()
    );
    assert!(r.files_scanned > 50, "workspace scan looks truncated");
}
