//! End-to-end tests for `chime-model`: the suite must prove the sound
//! protocols and refute the seeded probes, byte-identically, against
//! both the documented layout and the layout extracted from the repo's
//! real `lockword.rs`.

use std::path::Path;

use analyzer::model::lease::WordLayout;
use analyzer::model::suite;

#[test]
fn suite_passes_on_the_documented_layout() {
    let r = suite::run(WordLayout::documented(), "documented-default");
    assert!(r.pass(), "suite must pass:\n{}", r.to_text());
    assert_eq!(r.runs.len(), 4, "two models x sound+probe");
}

#[test]
fn suite_passes_on_the_repo_lockword() {
    // The shipping layout must satisfy the same properties as the
    // documented one — this is the actual gate `make model-check` runs.
    let repo_root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let src = std::fs::read_to_string(repo_root.join("crates/core/src/lockword.rs")).unwrap();
    let file = analyzer::source::SourceFile::new("crates/core/src/lockword.rs".to_string(), &src);
    let layout = WordLayout::from_source(&file).expect("repo lockword.rs must parse");
    let r = suite::run(layout, "crates/core/src/lockword.rs");
    assert!(r.pass(), "repo layout must verify:\n{}", r.to_text());
}

#[test]
fn zombie_release_probe_is_refuted_with_a_witness() {
    let r = suite::run(WordLayout::documented(), "documented-default");
    let probe = r
        .runs
        .iter()
        .find(|m| m.mode.contains("zombie-release"))
        .expect("lease probe present");
    let v = probe.result.violation.as_ref().expect("probe must refute");
    assert_eq!(v.property, "lease-safety");
    assert!(
        v.trace.iter().any(|s| s.contains("zombie-release")),
        "witness must contain the stale-owner write: {:?}",
        v.trace
    );
}

#[test]
fn suite_json_and_text_are_byte_identical_across_runs() {
    let a = suite::run(WordLayout::documented(), "documented-default");
    let b = suite::run(WordLayout::documented(), "documented-default");
    assert_eq!(a.to_json(), b.to_json(), "model JSON must be byte-deterministic");
    assert_eq!(a.to_text(), b.to_text());
    assert!(a.to_json().contains("\"tool\""), "report carries its schema header");
}
