//! Property tests for the call-graph builder: generated workspaces of
//! nested definitions, calls and shadowed names, checked for the
//! invariants the interprocedural rules lean on. Zero dependencies — the
//! generator is a seeded xorshift, so every run explores the same
//! corpus and failures reproduce by seed.

use std::collections::BTreeSet;

use analyzer::callgraph::CallGraph;
use analyzer::source::SourceFile;
use analyzer::workspace::Workspace;

/// Deterministic xorshift64* PRNG.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Pool of function names; collisions across files are intentional (the
/// resolver must return *every* same-named definition).
fn name(i: u64) -> String {
    format!("op_{}", i % 7)
}

/// Generates one file: a handful of functions, each with calls to pooled
/// names, optional `let`-shadowing, and optional function-typed params.
fn gen_file(rng: &mut Rng, file_idx: usize) -> (String, String) {
    let mut src = String::new();
    let n_fns = 1 + rng.below(4);
    for f in 0..n_fns {
        let fname = format!("f{file_idx}_{f}");
        let shadow = rng.below(3) == 0;
        let fn_param = rng.below(4) == 0;
        let callee = name(rng.below(7));
        src.push_str(&format!(
            "fn {fname}({}) {{\n",
            if fn_param {
                format!("{callee}: impl Fn()")
            } else {
                "x: u64".to_string()
            }
        ));
        if shadow {
            src.push_str(&format!("    let {callee} = || ();\n"));
        }
        let n_calls = rng.below(4);
        for _ in 0..n_calls {
            src.push_str(&format!("    {}(x);\n", name(rng.below(7))));
        }
        src.push_str(&format!("    {callee}(x);\n}}\n"));
        // Every pooled name also gets definitions sprinkled around.
        if rng.below(2) == 0 {
            src.push_str(&format!("fn {}(y: u64) {{ }}\n", name(rng.below(7))));
        }
    }
    (format!("crates/c{file_idx}/src/lib.rs", ), src)
}

fn gen_workspace(seed: u64) -> Vec<(String, String)> {
    let mut rng = Rng(seed | 1);
    let n_files = 2 + rng.below(4) as usize;
    (0..n_files).map(|i| gen_file(&mut rng, i)).collect()
}

fn build(files: &[(String, String)]) -> (Workspace, CallGraph) {
    let ws = Workspace::new(
        files
            .iter()
            .map(|(p, s)| SourceFile::new(p.clone(), s))
            .collect(),
    );
    let cg = CallGraph::build(&ws);
    (ws, cg)
}

/// Call sites per function: `(site name, resolved callee names)`.
type FnShape = (String, Vec<(String, Vec<String>)>);

/// Flattens a call graph to a comparable shape keyed by function name
/// (stable across workspace index permutations).
fn shape(ws: &Workspace, cg: &CallGraph) -> Vec<FnShape> {
    let mut out = Vec::new();
    for gid in 0..ws.fns.len() {
        let (file, f) = ws.fn_at(gid);
        let sites = cg.sites[gid]
            .iter()
            .map(|s| {
                let callees = s
                    .callees
                    .iter()
                    .map(|&d| {
                        let (df, dfn) = ws.fn_at(d);
                        format!("{}::{}", df.rel_path, dfn.name)
                    })
                    .collect();
                (s.name.clone(), callees)
            })
            .collect();
        out.push((format!("{}::{}", file.rel_path, f.name), sites));
    }
    out.sort();
    out
}

#[test]
fn same_seed_same_graph() {
    for seed in 1..=50u64 {
        let files = gen_workspace(seed);
        let (ws_a, cg_a) = build(&files);
        let (ws_b, cg_b) = build(&files);
        assert_eq!(
            shape(&ws_a, &cg_a),
            shape(&ws_b, &cg_b),
            "seed {seed}: rebuild must be identical"
        );
    }
}

#[test]
fn graph_is_stable_under_file_reordering() {
    for seed in 1..=50u64 {
        let files = gen_workspace(seed);
        let (ws_a, cg_a) = build(&files);
        // Reverse and rotate the input order; the workspace canonicalizes
        // by path, so the graph shape must not move.
        let mut rev: Vec<_> = files.clone();
        rev.reverse();
        let (ws_b, cg_b) = build(&rev);
        let mut rot: Vec<_> = files.clone();
        rot.rotate_left(1);
        let (ws_c, cg_c) = build(&rot);
        let a = shape(&ws_a, &cg_a);
        assert_eq!(a, shape(&ws_b, &cg_b), "seed {seed}: reversed input changed the graph");
        assert_eq!(a, shape(&ws_c, &cg_c), "seed {seed}: rotated input changed the graph");
    }
}

#[test]
fn resolved_callees_are_exactly_the_same_named_defs() {
    // For every unshadowed call site, the callee set is exactly the
    // workspace's definitions of that name; shadowed sites resolve to
    // nothing. (The generator only shadows via `let` bindings and
    // function-typed params, mirroring the builder's contract.)
    for seed in 1..=50u64 {
        let files = gen_workspace(seed);
        let (ws, cg) = build(&files);
        for gid in 0..ws.fns.len() {
            for site in &cg.sites[gid] {
                let defs: BTreeSet<usize> = ws.defs_named(&site.name).iter().copied().collect();
                let got: BTreeSet<usize> = site.callees.iter().copied().collect();
                if got.is_empty() {
                    continue; // shadowed or undefined: nothing to check
                }
                assert!(
                    got.is_subset(&defs),
                    "seed {seed}: site `{}` resolved outside its name set",
                    site.name
                );
            }
        }
    }
}

#[test]
fn shadowed_names_never_resolve() {
    // Direct invariant: a call through a `let`-bound or param-bound name
    // must have no callees, even when a same-named global def exists.
    for seed in 1..=50u64 {
        let files = gen_workspace(seed);
        let (ws, cg) = build(&files);
        for gid in 0..ws.fns.len() {
            let (file, f) = ws.fn_at(gid);
            let src_has_shadow = |name: &str| {
                let toks = &file.toks;
                (f.body.0..f.body.1.min(toks.len())).any(|i| {
                    toks[i].is_ident("let")
                        && toks.get(i + 1).is_some_and(|t| t.is_ident(name))
                })
            };
            for site in &cg.sites[gid] {
                if src_has_shadow(&site.name) {
                    assert!(
                        site.callees.is_empty(),
                        "seed {seed}: shadowed `{}` in {} resolved to defs",
                        site.name,
                        f.name
                    );
                }
            }
        }
    }
}
