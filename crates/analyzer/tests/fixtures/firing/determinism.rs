//! Fixture: every class of determinism violation R1 catches.
//! Not compiled — consumed as text by `tests/lint.rs`.

use std::collections::{HashMap, HashSet};
use std::time::Instant;

pub fn stamp() -> Instant {
    Instant::now()
}

pub fn wall_clock_epoch() -> u64 {
    std::time::SystemTime::now().elapsed().unwrap().as_secs()
}

pub fn nap() {
    std::thread::sleep(std::time::Duration::from_millis(1));
}

pub fn roll() -> u64 {
    let mut rng = thread_rng();
    rng.gen()
}

pub fn export_counts(counts: &HashMap<String, u64>) -> Vec<String> {
    let mut out = Vec::new();
    for k in counts.keys() {
        out.push(k.clone());
    }
    out
}

pub fn drain_set(pending: HashSet<u64>) -> u64 {
    let mut sum = 0;
    for v in pending {
        sum += v;
    }
    sum
}
