//! Fixture: leaked spans and mid-operation trace-id mints for R10.
//! Not compiled — consumed as text by `tests/lint.rs`.

pub fn unbalanced(ep: &mut Endpoint) {
    let sp = ep.span_begin("insert", key);
    work(ep);
}

pub fn leaky(ep: &mut Endpoint) -> Option<u64> {
    let sp = ep.span_begin("search", key);
    let v = probe(ep)?;
    ep.span_end(sp, true);
    Some(v)
}

pub fn reminted(ep: &mut Endpoint) {
    let sp = ep.span_begin("update", key);
    ep.set_trace_id(7);
    work(ep);
    ep.span_end(sp, true);
}

pub fn balanced(ep: &mut Endpoint) {
    ep.set_trace_id(1);
    let sp = ep.span_begin("delete", key);
    work(ep);
    ep.span_end(sp, true);
}
