//! Fixture for R12: hand-written literal masks that are not lock-word
//! field masks. The compare/swap operands are runtime values, so R6
//! (verb-protocol) skips these calls and only `mask-consistency` fires.
//! Not compiled — consumed as text by `tests/lint.rs`.

pub fn epoch_slice_probe(ep: &mut Endpoint, addr: GlobalAddr, old: u64, next: u64) -> u64 {
    ep.masked_cas(addr, old, 0xFFFF_FFFF, next, 0xFF00)
}

pub fn derived_mask_ok(ep: &mut Endpoint, addr: GlobalAddr, old: u64, next: u64) -> u64 {
    ep.masked_cas(addr, old, EPOCH_MASK << EPOCH_SHIFT, next, EPOCH_MASK << EPOCH_SHIFT)
}
