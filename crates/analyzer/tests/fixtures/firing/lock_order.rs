//! Fixture for R11: two operations take the CN-side local slot and the
//! on-leaf lock word in opposite orders — a deadlock under contention.
//! Not compiled — consumed as text by `tests/lint.rs`.

pub fn forward_op(ep: &mut Endpoint, table: &LocalLockTable, addr: GlobalAddr) {
    let _slot = table.local_lock(addr.raw());
    let word = ep.masked_cas(addr, 0, 1, 1, 1);
    ep.unlock_writes(addr, word);
}

pub fn reversed_op(ep: &mut Endpoint, table: &LocalLockTable, addr: GlobalAddr) {
    let word = ep.masked_cas(addr, 0, 1, 1, 1);
    let _slot = table.local_lock(addr.raw());
    ep.unlock_writes(addr, word);
}
