//! Fixture: blocking synchronization inside lane bodies for R9.
//! Not compiled — consumed as text by `tests/lint.rs`.

pub fn spawn_lanes(shared: Arc<Mutex<u64>>, cv: Arc<Condvar>) -> Vec<LaneBody<u64>> {
    let mut bodies: Vec<LaneBody<u64>> = Vec::new();
    let s = Arc::clone(&shared);
    bodies.push(Box::new(move || {
        let mut guard = s.lock().unwrap();
        *guard += 1;
        *guard
    }));
    bodies
}

pub fn wait_for_peer(cv: &Condvar, m: &Mutex<bool>) -> bool {
    let guard = m.lock().unwrap();
    let guard = cv.wait(guard).unwrap();
    *guard
}

pub fn lane_local_is_fine() -> u64 {
    let mut acc = 0u64;
    for i in 0..4 {
        acc += i;
    }
    acc
}
