//! Fixture: malformed suppression directives — each is itself a finding,
//! and none of them can be suppressed.
//! Not compiled — consumed as text by `tests/lint.rs`.

// chime-lint: allow(determinism)
pub fn missing_reason() {}

// chime-lint: allow(): forgot to name the rule
pub fn missing_rule() {}

// chime-lint: deny(determinism): wrong verb
pub fn wrong_verb() {}
