//! Fixture: epoch-discipline — a routing-epoch bump with no partition
//! lock in scope. The locked twin below must stay clean.
//! Not compiled — consumed as text by `tests/lint.rs`.

pub fn publish(ep: &mut Endpoint) {
    ep.faa(layout::route_epoch_addr(), 1);
}

pub fn publish_locked(ep: &mut Endpoint) {
    let lock = read_word(ep, layout::part_lock_addr());
    assert_eq!(lock, 1);
    ep.faa(layout::route_epoch_addr(), 1);
}
