//! Fixture: both lock-discipline clauses for R3 — an acquire with no
//! release path, and a bare masked-CAS retry loop with no backoff.
//! Not compiled — consumed as text by `tests/lint.rs`.

pub fn update(ep: &mut Endpoint, lock_addr: GlobalAddr) {
    while ep.masked_cas(lock_addr, 0, 1, 1, 1) & 1 != 0 {
        spin();
    }
    mutate(ep);
}
