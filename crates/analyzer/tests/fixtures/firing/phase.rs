//! Fixture: unbalanced and leaky phase frames for R2.
//! Not compiled — consumed as text by `tests/lint.rs`.

pub fn unbalanced(ep: &mut Endpoint) {
    ep.phase_begin("read");
    work(ep);
}

pub fn leaky(ep: &mut Endpoint) -> Option<u64> {
    ep.phase_begin("lookup");
    let v = probe(ep)?;
    ep.phase_end();
    Some(v)
}

pub fn balanced(ep: &mut Endpoint) {
    ep.phase_begin("write");
    work(ep);
    ep.phase_end();
}
