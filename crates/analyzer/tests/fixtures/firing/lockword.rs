//! Fixture for R5: the file must be named `lockword.rs` for the rule to
//! apply. `ARGMAX_MASK` is widened to 11 bits, so the argmax field both
//! leaves its documented position and overlaps the vacancy bitmap.
//! Not compiled — consumed as text by `tests/lint.rs`.

const LOCK_BIT: u64 = 1;
const ARGMAX_SHIFT: u32 = 1;
const ARGMAX_MASK: u64 = 0x7FF;
const VACANCY_SHIFT: u32 = 11;
pub const VACANCY_BITS: usize = 45;
const EPOCH_SHIFT: u32 = 56;
const EPOCH_MASK: u64 = 0xFF;
