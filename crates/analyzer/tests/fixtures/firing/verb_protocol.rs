//! Fixture: a masked-CAS whose mask *shape* matches neither the acquire
//! protocol nor the full-word reclaim protocol, for R6. Each mask on its
//! own is a legal lock-word field (so R12 stays quiet); the combination
//! — compare the lock bit, swap the whole word — is the bug.
//! Not compiled — consumed as text by `tests/lint.rs`.

pub fn partial_word_cas(ep: &mut Endpoint, addr: GlobalAddr) -> u64 {
    ep.masked_cas(addr, 0, 1, 1, u64::MAX)
}

pub fn acquire_ok(ep: &mut Endpoint, addr: GlobalAddr) -> u64 {
    let word = ep.masked_cas(addr, 0, 1, 1, 1);
    ep.write(addr, &0u64.to_le_bytes());
    word
}

pub fn reclaim_ok(ep: &mut Endpoint, addr: GlobalAddr, old: u64, next: u64) -> u64 {
    ep.masked_cas(addr, old, u64::MAX, next, !0)
}
