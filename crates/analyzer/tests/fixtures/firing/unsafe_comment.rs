//! Fixture: an `unsafe` block with no adjacent justification for R4.
//! Not compiled — consumed as text by `tests/lint.rs`.

pub fn peek(p: *const u64) -> u64 {
    unsafe { *p }
}

pub fn peek_justified(p: *const u64) -> u64 {
    // SAFETY: fixture; caller guarantees `p` is valid and aligned.
    unsafe { *p }
}
