//! Fixture: leaked and abandoned WQE tickets for R7.
//! Not compiled — consumed as text by `tests/lint.rs`.

pub fn leaked(qp: &mut Qp, now: u64) {
    let _t = qp.post_wqe(now, 0, 1, 64);
    other_work(qp);
}

pub fn abandoned(qp: &mut Qp, now: u64) -> Option<u64> {
    let t = qp.post_wqe(now, 0, 1, 64);
    let v = probe(qp)?;
    let out = qp.poll_wqe(t);
    Some(v + out.completion_ns)
}

pub fn disciplined(qp: &mut Qp, now: u64) -> u64 {
    let t = qp.post_wqe(now, 0, 1, 64);
    let out = qp.poll_wqe(t);
    out.completion_ns
}
