//! Fixture: epoch-discipline violation suppressed with a reason.

pub fn publish(ep: &mut Endpoint) {
    // chime-lint: allow(epoch-discipline): fixture; bootstrap publishes the table before any CN exists.
    ep.faa(layout::route_epoch_addr(), 1);
}
