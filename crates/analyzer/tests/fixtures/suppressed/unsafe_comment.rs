//! Fixture: an unjustified `unsafe` block, suppressed with a reason.

pub fn peek(p: *const u64) -> u64 {
    // chime-lint: allow(unsafe-comment): fixture; soundness argued in the module header.
    unsafe { *p }
}
