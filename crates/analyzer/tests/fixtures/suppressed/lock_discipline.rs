//! Fixture: lock-discipline violations suppressed with reasons.

// chime-lint: allow(lock-discipline): fixture; the caller unlocks through the recovery path.
pub fn update(ep: &mut Endpoint, lock_addr: GlobalAddr) {
    // chime-lint: allow(lock-discipline): fixture reproduces a baseline's bare spin loop.
    while ep.masked_cas(lock_addr, 0, 1, 1, 1) & 1 != 0 {
        spin();
    }
    mutate(ep);
}
