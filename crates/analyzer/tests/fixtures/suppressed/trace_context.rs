//! Fixture: trace-context violations suppressed with reasons.

// chime-lint: allow(trace-context): fixture; the span is closed by the paired finish() helper.
pub fn unbalanced(ep: &mut Endpoint) {
    let sp = ep.span_begin("insert", key);
    work(ep);
}

// chime-lint: allow(trace-context): fixture; probe() is infallible here so the `?` never fires.
pub fn leaky(ep: &mut Endpoint) -> Option<u64> {
    let sp = ep.span_begin("search", key);
    let v = probe(ep)?;
    ep.span_end(sp, true);
    Some(v)
}

// chime-lint: allow(trace-context): fixture; replays a recorded id, not a fresh mint.
pub fn reminted(ep: &mut Endpoint) {
    let sp = ep.span_begin("update", key);
    ep.set_trace_id(recorded);
    work(ep);
    ep.span_end(sp, true);
}
