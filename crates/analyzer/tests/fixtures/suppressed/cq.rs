//! Fixture: cq-discipline violations suppressed with reasons.

// chime-lint: allow(cq-discipline): fixture; the ticket is reaped by the caller's drain loop.
pub fn leaked(qp: &mut Qp, now: u64) {
    let _t = qp.post_wqe(now, 0, 1, 64);
    other_work(qp);
}

// chime-lint: allow(cq-discipline): fixture; probe() is infallible here so the `?` never fires.
pub fn abandoned(qp: &mut Qp, now: u64) -> Option<u64> {
    let t = qp.post_wqe(now, 0, 1, 64);
    let v = probe(qp)?;
    let out = qp.poll_wqe(t);
    Some(v + out.completion_ns)
}
