//! Fixture: async-block violations suppressed with reasons.

pub fn spawn_lanes(shared: Arc<Mutex<u64>>, cv: Arc<Condvar>) -> Vec<LaneBody<u64>> {
    let mut bodies: Vec<LaneBody<u64>> = Vec::new();
    let s = Arc::clone(&shared);
    bodies.push(Box::new(move || {
        // chime-lint: allow(async-block): fixture; exactly one lane runs at a time, so the lock is uncontended by construction.
        let mut guard = s.lock().unwrap();
        *guard += 1;
        *guard
    }));
    bodies
}

pub fn wait_for_peer(cv: &Condvar, m: &Mutex<bool>) -> bool {
    // chime-lint: allow(async-block): fixture; called only from the setup thread, never from a lane.
    let guard = m.lock().unwrap();
    // chime-lint: allow(async-block): fixture; ditto — setup-thread rendezvous before any lane starts.
    let guard = cv.wait(guard).unwrap();
    *guard
}
