//! Fixture: phase-balance violations suppressed with reasons.

// chime-lint: allow(phase-balance): fixture; the frame is closed by the paired finish() helper.
pub fn unbalanced(ep: &mut Endpoint) {
    ep.phase_begin("read");
    work(ep);
}

// chime-lint: allow(phase-balance): fixture; probe() is infallible here so the `?` never fires.
pub fn leaky(ep: &mut Endpoint) -> Option<u64> {
    ep.phase_begin("lookup");
    let v = probe(ep)?;
    ep.phase_end();
    Some(v)
}
