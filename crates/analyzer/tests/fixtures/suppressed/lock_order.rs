//! Fixture: the opposite-order pair, suppressed with a reason at the
//! cycle's witnessing edge.

pub fn forward_op(ep: &mut Endpoint, table: &LocalLockTable, addr: GlobalAddr) {
    let _slot = table.local_lock(addr.raw());
    // chime-lint: allow(lock-order): fixture; the reversed twin is unreachable in this configuration.
    let word = ep.masked_cas(addr, 0, 1, 1, 1);
    ep.unlock_writes(addr, word);
}

pub fn reversed_op(ep: &mut Endpoint, table: &LocalLockTable, addr: GlobalAddr) {
    let word = ep.masked_cas(addr, 0, 1, 1, 1);
    let _slot = table.local_lock(addr.raw());
    ep.unlock_writes(addr, word);
}
