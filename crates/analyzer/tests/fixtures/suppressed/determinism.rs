//! Fixture: the same determinism violations, each suppressed with a
//! reasoned `chime-lint` directive. Must lint clean.

use std::collections::HashMap;
use std::time::Instant;

pub fn stamp() -> Instant {
    // chime-lint: allow(determinism): fixture exercises the suppression path.
    Instant::now()
}

pub fn nap() {
    // chime-lint: allow(determinism): fixture exercises the suppression path.
    std::thread::sleep(std::time::Duration::from_millis(1));
}

pub fn roll() -> u64 {
    // chime-lint: allow(determinism): fixture exercises the suppression path.
    let rng = thread_rng();
    rng.gen()
}

pub fn export_counts(counts: &HashMap<String, u64>) -> Vec<String> {
    let mut out = Vec::new();
    // chime-lint: allow(determinism): fixture; caller sorts the result.
    for k in counts.keys() {
        out.push(k.clone());
    }
    out
}
