//! Fixture for R5 suppression: the same widened `ARGMAX_MASK` with
//! reasoned directives on the anchor lines of both findings.

const LOCK_BIT: u64 = 1;
const ARGMAX_SHIFT: u32 = 1; // chime-lint: allow(lockword-layout): fixture keeps the widened mask deliberately.
const ARGMAX_MASK: u64 = 0x7FF;
const VACANCY_SHIFT: u32 = 11; // chime-lint: allow(lockword-layout): fixture; overlap is the point of the test.
pub const VACANCY_BITS: usize = 45;
const EPOCH_SHIFT: u32 = 56;
const EPOCH_MASK: u64 = 0xFF;
