//! Fixture: the stray literal masks, suppressed with a reason.

pub fn epoch_slice_probe(ep: &mut Endpoint, addr: GlobalAddr, old: u64, next: u64) -> u64 {
    // chime-lint: allow(mask-consistency): fixture; models a probe against a foreign lock-word layout.
    ep.masked_cas(addr, old, 0xFFFF_FFFF, next, 0xFF00)
}
