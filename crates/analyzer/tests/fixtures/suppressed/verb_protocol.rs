//! Fixture: the nonconforming masked-CAS, suppressed with a reason.

pub fn partial_word_cas(ep: &mut Endpoint, addr: GlobalAddr) -> u64 {
    // chime-lint: allow(verb-protocol): fixture; models a baseline with a different lock-word layout.
    ep.masked_cas(addr, 0, 1, 1, u64::MAX)
}
