//! Per-file source model shared by all rules.
//!
//! Wraps the lexed token stream with the structure rules need:
//!
//! * **test regions** — `#[cfg(test)]` / `#[test]` items are exempt from
//!   every rule (tests may sleep, spin, and iterate hash maps freely);
//! * **function spans** — `fn` items with their body token ranges, for the
//!   function-scoped protocol rules (phase balance, lock discipline);
//! * **loop spans** — `loop`/`while`/`for` constructs including their
//!   condition, for the retry-backoff rule;
//! * **suppressions** — `// chime-lint: allow(rule, ...): reason` comments,
//!   with the mandatory-reason grammar enforced here.

use crate::lexer::{lex, Comment, Lexed, Tok, TokKind};

/// A half-open token range `[start, end)` into [`SourceFile::toks`].
pub type TokRange = (usize, usize);

/// A `fn` item and its body.
#[derive(Debug, Clone)]
pub struct FnSpan {
    /// Function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token range of the whole item (from `fn` to the closing brace).
    pub toks: TokRange,
    /// Token range of the body block, braces included. Empty for
    /// body-less declarations (trait methods, extern fns).
    pub body: TokRange,
}

/// A loop construct (`loop`, `while`, `for`), condition included.
#[derive(Debug, Clone)]
pub struct LoopSpan {
    /// 1-based line of the loop keyword.
    pub line: u32,
    /// Token range from the loop keyword through the body's closing brace.
    pub toks: TokRange,
}

/// One parsed `chime-lint: allow(...)` suppression.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// Rules this comment suppresses.
    pub rules: Vec<String>,
    /// The line whose findings are suppressed.
    pub target_line: u32,
    /// Line of the comment itself (for diagnostics).
    pub comment_line: u32,
}

/// A malformed suppression comment (missing reason or bad syntax).
#[derive(Debug, Clone)]
pub struct BadSuppression {
    /// Line of the offending comment.
    pub line: u32,
    /// What is wrong with it.
    pub why: String,
}

/// The analyzed form of one source file.
pub struct SourceFile {
    /// Path relative to the lint root, with forward slashes.
    pub rel_path: String,
    /// Code tokens.
    pub toks: Vec<Tok>,
    /// Comments.
    pub comments: Vec<Comment>,
    /// Whether the entire file is test/bench/example code.
    pub all_test: bool,
    /// Per-token flag: token belongs to a `#[cfg(test)]`/`#[test]` item.
    pub test_tok: Vec<bool>,
    /// Extracted functions, in source order.
    pub fns: Vec<FnSpan>,
    /// Extracted loops, in source order.
    pub loops: Vec<LoopSpan>,
    /// Valid suppressions.
    pub suppressions: Vec<Suppression>,
    /// Malformed suppressions (reported by the engine).
    pub bad_suppressions: Vec<BadSuppression>,
}

impl SourceFile {
    /// Builds the model from file contents.
    pub fn new(rel_path: String, src: &str) -> Self {
        let Lexed { toks, comments } = lex(src);
        let all_test = path_is_test(&rel_path);
        let test_tok = mark_test_tokens(&toks, all_test);
        let fns = extract_fns(&toks);
        let loops = extract_loops(&toks);
        let (suppressions, bad_suppressions) = parse_suppressions(&comments, &toks);
        SourceFile {
            rel_path,
            toks,
            comments,
            all_test,
            test_tok,
            fns,
            loops,
            suppressions,
            bad_suppressions,
        }
    }

    /// Whether the token at `idx` is production (non-test) code.
    pub fn is_production(&self, idx: usize) -> bool {
        !self.all_test && !self.test_tok[idx]
    }

    /// Whether a `SAFETY:`/`# Safety` comment sits within `window` lines
    /// at or above `line` (adjacency requirement of the unsafe rule).
    pub fn has_safety_comment_near(&self, line: u32, window: u32) -> bool {
        self.comments.iter().any(|c| {
            (c.text.contains("SAFETY:") || c.text.contains("# Safety"))
                && c.end_line <= line
                && c.end_line + window >= line
        })
    }
}

/// Whole-file exemption: integration tests, benches, examples and build
/// scripts are not production code.
fn path_is_test(rel: &str) -> bool {
    rel.contains("/tests/")
        || rel.contains("/benches/")
        || rel.contains("/examples/")
        || rel.ends_with("build.rs")
}

/// Marks every token inside a `#[cfg(test)]` or `#[test]` item.
fn mark_test_tokens(toks: &[Tok], all_test: bool) -> Vec<bool> {
    let mut flags = vec![all_test; toks.len()];
    if all_test {
        return flags;
    }
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].is_punct('#') && is_test_attr(toks, i) {
            // Find the end of the attribute, then the item's brace block
            // (or trailing `;` for item-less forms).
            let attr_end = match skip_attr(toks, i) {
                Some(e) => e,
                None => break,
            };
            let mut j = attr_end;
            let mut depth = 0i32;
            let mut started = false;
            while j < toks.len() {
                if toks[j].is_punct('{') {
                    depth += 1;
                    started = true;
                } else if toks[j].is_punct('}') {
                    depth -= 1;
                    if started && depth == 0 {
                        break;
                    }
                } else if toks[j].is_punct(';') && !started {
                    break;
                }
                j += 1;
            }
            for f in flags.iter_mut().take((j + 1).min(toks.len())).skip(i) {
                *f = true;
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    flags
}

/// Whether the attribute starting at `#` (index `i`) is `#[cfg(test)]`,
/// `#[test]`, `#[tokio::test]`-like, or `#[cfg(any(test, ...))]`.
fn is_test_attr(toks: &[Tok], i: usize) -> bool {
    if !toks.get(i + 1).is_some_and(|t| t.is_punct('[')) {
        return false;
    }
    let end = match skip_attr(toks, i) {
        Some(e) => e,
        None => return false,
    };
    let inner = &toks[i + 2..end.saturating_sub(1)];
    let mut has_test = false;
    let mut has_cfg = false;
    for t in inner {
        if t.is_ident("test") {
            has_test = true;
        }
        if t.is_ident("cfg") {
            has_cfg = true;
        }
    }
    has_test && (has_cfg || inner.first().is_some_and(|t| t.is_ident("test")))
}

/// Returns the index just past a `#[...]` attribute starting at `#`.
fn skip_attr(toks: &[Tok], i: usize) -> Option<usize> {
    if !toks.get(i + 1)?.is_punct('[') {
        return None;
    }
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(i + 1) {
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return Some(j + 1);
            }
        }
    }
    None
}

/// Extracts `fn` items with their body ranges.
fn extract_fns(toks: &[Tok]) -> Vec<FnSpan> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].is_ident("fn") {
            // `fn` in a function-pointer type (`fn(u64) -> u64`) has no
            // name identifier after it.
            let Some(name_tok) = toks.get(i + 1) else {
                break;
            };
            if name_tok.kind != TokKind::Ident {
                i += 1;
                continue;
            }
            let name = name_tok.text.clone();
            let line = toks[i].line;
            // Scan forward for the body `{` (at zero paren/bracket depth)
            // or a `;` meaning a body-less declaration.
            let mut j = i + 2;
            let mut pdepth = 0i32;
            let mut body = (0usize, 0usize);
            while j < toks.len() {
                let t = &toks[j];
                if t.is_punct('(') || t.is_punct('[') {
                    pdepth += 1;
                } else if t.is_punct(')') || t.is_punct(']') {
                    pdepth -= 1;
                } else if t.is_punct(';') && pdepth == 0 {
                    break;
                } else if t.is_punct('{') && pdepth == 0 {
                    let end = match_brace(toks, j);
                    body = (j, end);
                    j = end;
                    break;
                }
                j += 1;
            }
            out.push(FnSpan {
                name,
                line,
                toks: (i, j.min(toks.len())),
                body,
            });
            // Continue scanning *inside* the function too (nested fns are
            // rare but legal); step past the header only.
            i += 2;
        } else {
            i += 1;
        }
    }
    out
}

/// Extracts loop constructs. `for` is only a loop when an `in` keyword
/// appears before the body brace (distinguishes `impl T for U`).
fn extract_loops(toks: &[Tok]) -> Vec<LoopSpan> {
    let mut out = Vec::new();
    for i in 0..toks.len() {
        let t = &toks[i];
        let is_loop_kw = t.is_ident("loop") || t.is_ident("while") || t.is_ident("for");
        if !is_loop_kw {
            continue;
        }
        // `while let` / closures in conditions: find the body `{` at zero
        // paren depth.
        let mut j = i + 1;
        let mut pdepth = 0i32;
        let mut saw_in = false;
        let mut body_open = None;
        while j < toks.len() {
            let u = &toks[j];
            if u.is_punct('(') || u.is_punct('[') {
                pdepth += 1;
            } else if u.is_punct(')') || u.is_punct(']') {
                pdepth -= 1;
            } else if u.is_ident("in") && pdepth == 0 {
                saw_in = true;
            } else if u.is_punct('{') && pdepth == 0 {
                body_open = Some(j);
                break;
            } else if u.is_punct(';') && pdepth == 0 {
                break; // `loop` used as an identifier? bail out
            }
            j += 1;
        }
        let Some(open) = body_open else { continue };
        if t.is_ident("for") && !saw_in {
            continue; // `impl Trait for Type { ... }`
        }
        // `loop` must immediately precede its brace to be the keyword.
        if t.is_ident("loop") && open != i + 1 {
            continue;
        }
        let end = match_brace(toks, open);
        out.push(LoopSpan {
            line: t.line,
            toks: (i, end),
        });
    }
    out
}

/// Returns the index just past the brace block opening at `open`.
fn match_brace(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
    }
    toks.len()
}

/// Parses `chime-lint:` suppression comments.
///
/// Grammar: `chime-lint: allow(rule[, rule]*): <non-empty reason>`.
/// A comment that owns its line targets the next code line; a trailing
/// comment targets its own line.
fn parse_suppressions(
    comments: &[Comment],
    toks: &[Tok],
) -> (Vec<Suppression>, Vec<BadSuppression>) {
    let mut ok = Vec::new();
    let mut bad = Vec::new();
    for c in comments {
        let Some(body) = directive_text(&c.text) else {
            continue;
        };
        let rest = body.trim_start();
        let Some(args) = rest.strip_prefix("allow(") else {
            bad.push(BadSuppression {
                line: c.line,
                why: "expected `chime-lint: allow(<rule>): <reason>`".into(),
            });
            continue;
        };
        let Some(close) = args.find(')') else {
            bad.push(BadSuppression {
                line: c.line,
                why: "unclosed `allow(` in suppression".into(),
            });
            continue;
        };
        let rules: Vec<String> = args[..close]
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        if rules.is_empty() {
            bad.push(BadSuppression {
                line: c.line,
                why: "suppression names no rule".into(),
            });
            continue;
        }
        let after = args[close + 1..].trim_start();
        let reason = after.strip_prefix(':').map(str::trim).unwrap_or("");
        if reason.is_empty() {
            bad.push(BadSuppression {
                line: c.line,
                why: "suppression reason is mandatory: `chime-lint: allow(<rule>): <reason>`"
                    .into(),
            });
            continue;
        }
        let target_line = if c.owns_line {
            // Next code line after the comment.
            toks.iter()
                .find(|t| t.line > c.end_line)
                .map(|t| t.line)
                .unwrap_or(c.line)
        } else {
            c.line
        };
        ok.push(Suppression {
            rules,
            target_line,
            comment_line: c.line,
        });
    }
    (ok, bad)
}

/// Returns the directive body when `text` is a *directive comment*: a
/// plain (non-doc) comment whose content starts with `chime-lint:`. Doc
/// comments and prose that merely mention the marker are not directives.
fn directive_text(text: &str) -> Option<&str> {
    let content = if let Some(rest) = text.strip_prefix("//") {
        // `///` and `//!` are doc comments, never directives.
        if rest.starts_with('/') || rest.starts_with('!') {
            return None;
        }
        rest
    } else if let Some(rest) = text.strip_prefix("/*") {
        if rest.starts_with('*') || rest.starts_with('!') {
            return None;
        }
        rest
    } else {
        return None;
    };
    content.trim_start().strip_prefix("chime-lint:")
}

/// Splits the argument tokens of a call whose `(` is at `open` into
/// top-level comma-separated groups. Returns `None` when `open` is not an
/// opening parenthesis.
pub fn call_args(toks: &[Tok], open: usize) -> Option<Vec<TokRange>> {
    if !toks.get(open)?.is_punct('(') {
        return None;
    }
    let mut depth = 0i32;
    let mut groups = Vec::new();
    let mut start = open + 1;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                if j > start {
                    groups.push((start, j));
                }
                return Some(groups);
            }
        } else if t.is_punct(',') && depth == 1 {
            groups.push((start, j));
            start = j + 1;
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sf(src: &str) -> SourceFile {
        SourceFile::new("crates/x/src/lib.rs".into(), src)
    }

    #[test]
    fn cfg_test_regions_are_marked() {
        let f = sf("fn prod() { a(); }\n#[cfg(test)]\nmod tests {\n fn t() { b(); } }\nfn prod2() {}");
        let a = f.toks.iter().position(|t| t.is_ident("a")).unwrap();
        let b = f.toks.iter().position(|t| t.is_ident("b")).unwrap();
        let p2 = f.toks.iter().position(|t| t.is_ident("prod2")).unwrap();
        assert!(f.is_production(a));
        assert!(!f.is_production(b));
        assert!(f.is_production(p2));
    }

    #[test]
    fn test_attr_fn_is_marked() {
        let f = sf("#[test]\nfn check() { x(); }\nfn prod() { y(); }");
        let x = f.toks.iter().position(|t| t.is_ident("x")).unwrap();
        let y = f.toks.iter().position(|t| t.is_ident("y")).unwrap();
        assert!(!f.is_production(x));
        assert!(f.is_production(y));
    }

    #[test]
    fn tests_dir_is_all_test() {
        let f = SourceFile::new("crates/x/tests/props.rs".into(), "fn a() {}");
        assert!(f.all_test);
        assert!(!f.is_production(0));
    }

    #[test]
    fn fn_extraction_with_bodies() {
        let f = sf("fn a(x: u64) -> u64 { x }\ntrait T { fn b(&self); }\nfn c() { if y { } }");
        let names: Vec<&str> = f.fns.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
        assert!(f.fns[0].body.1 > f.fns[0].body.0);
        assert_eq!(f.fns[1].body, (0, 0));
        // c's body spans through the nested if block.
        let (s, e) = f.fns[2].body;
        assert!(f.toks[s..e].iter().any(|t| t.is_ident("y")));
    }

    #[test]
    fn loop_extraction_kinds() {
        let f = sf(
            "impl T for U { fn m(&self) { loop { a(); } while x { b(); } for i in 0..3 { c(); } } }",
        );
        assert_eq!(f.loops.len(), 3);
    }

    #[test]
    fn while_condition_is_inside_loop_span() {
        let f = sf("fn m() { while ep.cas(a, 0, 1) != 0 { spin(); } }");
        let (s, e) = f.loops[0].toks;
        assert!(f.toks[s..e].iter().any(|t| t.is_ident("cas")));
    }

    #[test]
    fn suppression_grammar() {
        let f = sf(
            "// chime-lint: allow(determinism): test-only clock\nlet a = 1;\nlet b = 2; // chime-lint: allow(x, y): two rules\n// chime-lint: allow(determinism)\nlet c = 3;\n",
        );
        assert_eq!(f.suppressions.len(), 2);
        assert_eq!(f.suppressions[0].rules, vec!["determinism"]);
        assert_eq!(f.suppressions[0].target_line, 2);
        assert_eq!(f.suppressions[1].rules, vec!["x", "y"]);
        assert_eq!(f.suppressions[1].target_line, 3);
        assert_eq!(f.bad_suppressions.len(), 1, "missing reason is malformed");
    }

    #[test]
    fn call_args_split() {
        let f = sf("ep.masked_cas(lock_addr, 0, 1, f(a, b), 0x3FF);");
        let open = f.toks.iter().position(|t| t.is_punct('(')).unwrap();
        let args = call_args(&f.toks, open).unwrap();
        assert_eq!(args.len(), 5);
        let last = &f.toks[args[4].0..args[4].1];
        assert_eq!(last[0].text, "0x3FF");
    }
}
