//! `chime-lint` — protocol-aware static analysis for the CHIME repo.
//!
//! The Rust compiler cannot see the invariants CHIME's correctness rests
//! on: the packed bit fields of the 8-byte lock word, the
//! acquire/release discipline of the masked-CAS verb protocol, the
//! balance of manual phase frames, and the repo-wide determinism
//! guarantee (byte-identical traces/metrics/BENCH JSON per seed). This
//! crate enforces them at build time with a zero-dependency analysis
//! engine: a comment/string-aware lexer ([`lexer`]), a per-file source
//! model ([`source`]), a deterministic rule registry ([`rules`]) and a
//! sorted text + JSON report ([`report`]).
//!
//! Findings are suppressible inline, with a mandatory reason:
//!
//! ```text
//! // chime-lint: allow(lock-discipline): Sherman baseline keeps the paper's spin loop.
//! ```
//!
//! A suppression comment that owns its line applies to the next code
//! line; a trailing comment applies to its own line. Malformed
//! suppressions (missing reason) are themselves findings.
//!
//! Scope: production sources only — `crates/*/src/**/*.rs`, minus
//! `#[cfg(test)]`/`#[test]` items. Integration tests, benches and
//! examples may sleep, spin and iterate hash maps freely.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod callgraph;
pub mod dataflow;
pub mod lexer;
pub mod model;
pub mod report;
pub mod rules;
pub mod source;
pub mod workspace;

use std::path::{Path, PathBuf};

use report::{Finding, Report};
use source::SourceFile;
use workspace::Workspace;

/// Collects the production source files of the workspace rooted at
/// `root`: `crates/*/src/**/*.rs`, sorted by relative path.
pub fn collect_workspace_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    let mut files = Vec::new();
    for c in crate_dirs {
        let src = c.join("src");
        if src.is_dir() {
            walk(&src, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

/// Collects every `.rs` file under `dir`, recursively (used for fixture
/// corpora in tests).
pub fn collect_rs_files(dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    walk(dir, &mut files)?;
    files.sort();
    Ok(files)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            walk(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// Lints the given files, reporting paths relative to `root`.
///
/// All files form one [`Workspace`]: the per-file rules run on each file
/// and the whole-program rules (interprocedural lock/phase/CQ/span
/// discipline, lock ordering, mask consistency) run once over the
/// workspace's call graph and dataflow summaries. Suppressions are then
/// applied per file — a whole-program finding is suppressible exactly
/// like a per-file one, by an `allow(...)` comment in the file it
/// anchors to.
pub fn lint_files(root: &Path, files: &[PathBuf]) -> std::io::Result<Report> {
    let mut sources = Vec::with_capacity(files.len());
    for path in files {
        let src = std::fs::read_to_string(path)?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        sources.push(SourceFile::new(rel, &src));
    }
    let ws = Workspace::new(sources);
    let cg = callgraph::CallGraph::build(&ws);
    let dfa = dataflow::analyze(&ws, &cg);

    let mut raw: Vec<Finding> = Vec::new();
    for file in &ws.files {
        rules::run_file(file, &mut raw);
        for b in &file.bad_suppressions {
            raw.push(Finding {
                rule: "suppression",
                file: file.rel_path.clone(),
                line: b.line,
                message: b.why.clone(),
            });
        }
    }
    rules::run_workspace(&ws, &cg, &dfa, &mut raw);

    // Apply suppressions: a finding is dropped when a suppression in its
    // own file names its rule and targets its line. Malformed-suppression
    // findings are not suppressible. Honored suppressions are counted
    // once per comment (per file).
    let mut report = Report {
        files_scanned: ws.files.len(),
        ..Report::default()
    };
    let mut honored: std::collections::BTreeSet<(String, u32)> = std::collections::BTreeSet::new();
    raw.retain(|f| {
        if f.rule == "suppression" {
            return true;
        }
        let Some(file) = ws.file_by_path(&f.file) else {
            return true;
        };
        let hit = file
            .suppressions
            .iter()
            .find(|s| s.target_line == f.line && s.rules.iter().any(|r| r == f.rule));
        match hit {
            Some(s) => {
                honored.insert((f.file.clone(), s.comment_line));
                false
            }
            None => true,
        }
    });
    report.suppressions_honored = honored.len();
    report.findings = raw;
    report.sort();
    Ok(report)
}

/// Lints the whole workspace at `root`.
pub fn lint_workspace(root: &Path) -> std::io::Result<Report> {
    let files = collect_workspace_files(root)?;
    lint_files(root, &files)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_src(name: &str, src: &str) -> Vec<Finding> {
        let ws = Workspace::new(vec![SourceFile::new(name.to_string(), src)]);
        let cg = callgraph::CallGraph::build(&ws);
        let dfa = dataflow::analyze(&ws, &cg);
        let mut raw = Vec::new();
        rules::run_file(&ws.files[0], &mut raw);
        rules::run_workspace(&ws, &cg, &dfa, &mut raw);
        raw
    }

    #[test]
    fn clean_code_has_no_findings() {
        let f = lint_src(
            "crates/x/src/lib.rs",
            "pub fn f(m: &std::collections::BTreeMap<u64, u64>) -> u64 {\n    m.iter().map(|(_, v)| v).sum()\n}\n",
        );
        assert!(f.is_empty(), "unexpected findings: {f:?}");
    }

    #[test]
    fn test_code_is_exempt() {
        let f = lint_src(
            "crates/x/src/lib.rs",
            "#[cfg(test)]\nmod tests {\n    fn t() { let _ = std::time::Instant::now(); }\n}\n",
        );
        assert!(f.is_empty(), "test code must be exempt: {f:?}");
    }
}
