//! The `chime-model` binary.
//!
//! ```text
//! chime-model [--root DIR] [--json PATH] [--quiet]
//! ```
//!
//! Exhaustively model-checks the lock-lease protocol (mutual exclusion,
//! lease safety, progress) and the migration crash/recovery protocol
//! (routing integrity, journal discipline) over every interleaving of
//! their abstract actors, plus two seeded-bug probes the checker must
//! refute. The lock-word layout is extracted from the repo's own
//! `crates/core/src/lockword.rs` when present (falling back to the
//! documented layout otherwise). Prints the deterministic summary and,
//! with `--json`, writes the byte-identical machine-readable report.
//! Exit code 0 when every expectation is met, 1 otherwise, 2 on usage
//! or I/O errors.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use analyzer::model::lease::WordLayout;
use analyzer::model::suite;
use analyzer::source::SourceFile;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut json_out: Option<PathBuf> = None;
    let mut quiet = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage("--root needs a value"),
            },
            "--json" => match args.next() {
                Some(v) => json_out = Some(PathBuf::from(v)),
                None => return usage("--json needs a value"),
            },
            "--quiet" => quiet = true,
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let lockword = root.join("crates/core/src/lockword.rs");
    let (layout, origin) = match std::fs::read_to_string(&lockword) {
        Ok(src) => {
            let file = SourceFile::new("crates/core/src/lockword.rs".to_string(), &src);
            match WordLayout::from_source(&file) {
                Some(l) => (l, "crates/core/src/lockword.rs".to_string()),
                None => {
                    eprintln!(
                        "chime-model: {} does not define the layout constants",
                        lockword.display()
                    );
                    return ExitCode::from(2);
                }
            }
        }
        Err(_) => (WordLayout::documented(), "documented-default".to_string()),
    };

    let result = suite::run(layout, &origin);
    if let Some(path) = &json_out {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                if let Err(e) = std::fs::create_dir_all(parent) {
                    eprintln!("chime-model: cannot create {}: {e}", parent.display());
                    return ExitCode::from(2);
                }
            }
        }
        if let Err(e) = std::fs::write(path, result.to_json()) {
            eprintln!("chime-model: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if !quiet || !result.pass() {
        print!("{}", result.to_text());
    }
    if result.pass() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage(err: &str) -> ExitCode {
    eprintln!("chime-model: {err}\nusage: chime-model [--root DIR] [--json PATH] [--quiet]");
    ExitCode::from(2)
}
