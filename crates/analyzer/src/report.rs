//! Findings, deterministic ordering, and the text/JSON renderings.
//!
//! Output determinism is part of the contract (the JSON report is diffed
//! byte-for-byte in CI): findings are sorted by `(file, line, rule,
//! message)`, object keys are emitted in a fixed order, and nothing
//! time- or environment-dependent is ever included.

use obs::json::Json;

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule identifier (`determinism`, `lock-discipline`, ...).
    pub rule: &'static str,
    /// File path relative to the lint root, forward slashes.
    pub file: String,
    /// 1-based line the finding anchors to.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

/// The result of a lint run.
#[derive(Debug, Default)]
pub struct Report {
    /// Surviving findings (suppressed ones are dropped before they land
    /// here), sorted.
    pub findings: Vec<Finding>,
    /// Number of files analyzed.
    pub files_scanned: usize,
    /// Number of suppression comments that matched a finding.
    pub suppressions_honored: usize,
}

impl Report {
    /// Sorts findings into the canonical deterministic order.
    pub fn sort(&mut self) {
        self.findings.sort_by(|a, b| {
            (a.file.as_str(), a.line, a.rule, a.message.as_str())
                .cmp(&(b.file.as_str(), b.line, b.rule, b.message.as_str()))
        });
    }

    /// Renders the human-readable report.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&format!(
                "{}:{}: [{}] {}\n",
                f.file, f.line, f.rule, f.message
            ));
        }
        out.push_str(&format!(
            "chime-lint: {} finding(s), {} file(s) scanned, {} suppression(s) honored\n",
            self.findings.len(),
            self.files_scanned,
            self.suppressions_honored
        ));
        out
    }

    /// Renders the machine-readable report (pretty JSON, byte-identical
    /// for identical inputs).
    pub fn to_json(&self) -> String {
        let findings: Vec<Json> = self
            .findings
            .iter()
            .map(|f| {
                Json::obj(vec![
                    ("rule", Json::from(f.rule)),
                    ("file", Json::from(f.file.as_str())),
                    ("line", Json::from(f.line as u64)),
                    ("message", Json::from(f.message.as_str())),
                ])
            })
            .collect();
        // Per-rule counts, sorted by rule id.
        let mut counts: Vec<(&'static str, u64)> = Vec::new();
        for f in &self.findings {
            match counts.iter_mut().find(|(r, _)| *r == f.rule) {
                Some((_, n)) => *n += 1,
                None => counts.push((f.rule, 1)),
            }
        }
        counts.sort();
        let counts_json: Vec<Json> = counts
            .iter()
            .map(|(r, n)| Json::obj(vec![("rule", Json::from(*r)), ("count", Json::from(*n))]))
            .collect();
        Json::obj(vec![
            ("tool", Json::from("chime-lint")),
            ("schema", Json::from(1u64)),
            ("files_scanned", Json::from(self.files_scanned as u64)),
            (
                "suppressions_honored",
                Json::from(self.suppressions_honored as u64),
            ),
            ("counts", Json::Arr(counts_json)),
            ("findings", Json::Arr(findings)),
        ])
        .to_pretty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(rule: &'static str, file: &str, line: u32, msg: &str) -> Finding {
        Finding {
            rule,
            file: file.into(),
            line,
            message: msg.into(),
        }
    }

    #[test]
    fn sorted_text_and_counts() {
        let mut r = Report {
            findings: vec![
                f("b-rule", "z.rs", 1, "zzz"),
                f("a-rule", "a.rs", 9, "x"),
                f("a-rule", "a.rs", 3, "y"),
            ],
            files_scanned: 2,
            suppressions_honored: 1,
        };
        r.sort();
        let text = r.to_text();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].starts_with("a.rs:3"));
        assert!(lines[1].starts_with("a.rs:9"));
        assert!(lines[2].starts_with("z.rs:1"));
        assert!(lines[3].contains("3 finding(s)"));
        let json = r.to_json();
        assert!(json.contains("\"schema\": 1"));
        let parsed = obs::json::parse(&json).unwrap();
        assert_eq!(parsed.get("findings").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(parsed.get("counts").unwrap().as_arr().unwrap().len(), 2);
    }

    #[test]
    fn json_is_deterministic() {
        let mk = || {
            let mut r = Report {
                findings: vec![f("r", "x.rs", 2, "m"), f("r", "x.rs", 1, "m")],
                files_scanned: 1,
                suppressions_honored: 0,
            };
            r.sort();
            r.to_json()
        };
        assert_eq!(mk(), mk());
    }
}
