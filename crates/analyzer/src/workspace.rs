//! The repo-wide view: every [`SourceFile`] plus a symbol table of
//! function definitions.
//!
//! The whole-program rules (interprocedural lock discipline, phase/CQ/
//! span balance, lock ordering, mask consistency) need to see across
//! file boundaries. A [`Workspace`] holds the files in a canonical order
//! (sorted by relative path, so the analysis is independent of filesystem
//! enumeration order) and indexes every `fn` definition by name.
//!
//! Resolution is *name-level*: a call site `foo(...)` resolves to every
//! definition named `foo` anywhere in the workspace. That is the honest
//! precision limit of a lexer-based engine — CHIME's protocol verbs have
//! globally unique, intention-revealing names, so in practice resolution
//! is almost always singular; rules that consume ambiguous resolutions
//! document how they stay conservative.

use std::collections::BTreeMap;

use crate::source::{FnSpan, SourceFile};

/// A function definition, addressed by file index + index into that
/// file's [`SourceFile::fns`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct FnRef {
    /// Index into [`Workspace::files`].
    pub file: usize,
    /// Index into that file's `fns`.
    pub fn_idx: usize,
}

/// The whole-program view.
pub struct Workspace {
    /// Files, sorted by `rel_path`.
    pub files: Vec<SourceFile>,
    /// Every function definition, in (file, source) order. The index into
    /// this vector is the *global function id* used by the call graph and
    /// the dataflow summaries.
    pub fns: Vec<FnRef>,
    /// Function name → global function ids, each sorted ascending.
    pub by_name: BTreeMap<String, Vec<usize>>,
}

impl Workspace {
    /// Builds the workspace. Files are re-sorted by relative path so the
    /// result is identical no matter what order they were collected in.
    pub fn new(mut files: Vec<SourceFile>) -> Self {
        files.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));
        let mut fns = Vec::new();
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (fi, f) in files.iter().enumerate() {
            for (si, span) in f.fns.iter().enumerate() {
                let gid = fns.len();
                fns.push(FnRef { file: fi, fn_idx: si });
                by_name.entry(span.name.clone()).or_default().push(gid);
            }
        }
        Workspace { files, fns, by_name }
    }

    /// The file and span of global function `gid`.
    pub fn fn_at(&self, gid: usize) -> (&SourceFile, &FnSpan) {
        let r = self.fns[gid];
        let f = &self.files[r.file];
        (f, &f.fns[r.fn_idx])
    }

    /// Global ids of every definition named `name` (empty slice when the
    /// workspace defines no such function).
    pub fn defs_named(&self, name: &str) -> &[usize] {
        self.by_name.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Looks a file up by its relative path.
    pub fn file_by_path(&self, rel_path: &str) -> Option<&SourceFile> {
        self.files
            .binary_search_by(|f| f.rel_path.as_str().cmp(rel_path))
            .ok()
            .map(|i| &self.files[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(files: Vec<(&str, &str)>) -> Workspace {
        Workspace::new(
            files
                .into_iter()
                .map(|(p, s)| SourceFile::new(p.to_string(), s))
                .collect(),
        )
    }

    #[test]
    fn files_are_sorted_and_fns_indexed() {
        let w = ws(vec![
            ("crates/b/src/lib.rs", "fn beta() {}\nfn shared() {}"),
            ("crates/a/src/lib.rs", "fn alpha() {}\nfn shared() {}"),
        ]);
        assert_eq!(w.files[0].rel_path, "crates/a/src/lib.rs");
        assert_eq!(w.fns.len(), 4);
        let shared = w.defs_named("shared");
        assert_eq!(shared.len(), 2);
        // First definition comes from the path-sorted first file.
        assert_eq!(w.fn_at(shared[0]).0.rel_path, "crates/a/src/lib.rs");
        assert!(w.defs_named("missing").is_empty());
    }

    #[test]
    fn order_is_stable_under_input_reordering() {
        let a = ws(vec![
            ("crates/a/src/lib.rs", "fn one() {}"),
            ("crates/b/src/lib.rs", "fn two() {}"),
        ]);
        let b = ws(vec![
            ("crates/b/src/lib.rs", "fn two() {}"),
            ("crates/a/src/lib.rs", "fn one() {}"),
        ]);
        let names = |w: &Workspace| -> Vec<String> {
            w.fns
                .iter()
                .map(|r| w.files[r.file].fns[r.fn_idx].name.clone())
                .collect()
        };
        assert_eq!(names(&a), names(&b));
    }

    #[test]
    fn file_by_path_finds_sorted_entries() {
        let w = ws(vec![
            ("crates/b/src/lib.rs", "fn b() {}"),
            ("crates/a/src/lib.rs", "fn a() {}"),
        ]);
        assert!(w.file_by_path("crates/b/src/lib.rs").is_some());
        assert!(w.file_by_path("crates/c/src/lib.rs").is_none());
    }
}
