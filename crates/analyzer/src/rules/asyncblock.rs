//! R9 `async-block` — no blocking lock/condvar acquisition in lane
//! context.
//!
//! Coroutine lanes are cooperatively scheduled: exactly one lane of a
//! client runs at a time, and a lane yields only at verb/timer parks. A
//! blocking `Mutex::lock` or `Condvar::wait` inside a lane body (or a
//! serve handler running on one) can therefore deadlock the whole engine
//! — the lock's holder is a *parked* lane that will never be resumed
//! while the running lane spins in the OS — and at best it stalls the
//! deterministic schedule on OS wall time. This is the pelikan
//! grow-a-cache "blocking lock on the async path" pitfall, ported to our
//! lane model.
//!
//! The rule scopes itself to **lane-context files**: any file that names
//! `LaneBody` or `install_lane_hook` (i.e. defines, spawns or runs lane
//! bodies). Inside such files' production code it flags:
//!
//! * `.lock()` method calls — `std::sync` and `parking_lot` mutexes both
//!   block the OS thread hosting the lane;
//! * any mention of `Condvar`, and `.wait(...)` calls in files that use
//!   one — a condvar wait parks the OS thread outside the scheduler.
//!
//! Transports that deliberately run *off* the lane engine (e.g. the
//! real-TCP serve mode) simply don't name lane types, so they are out of
//! scope by construction. Genuinely safe uses (e.g. a lock that is
//! uncontended because only one lane runs at a time) take a reasoned
//! `chime-lint: allow(async-block)` suppression.

use crate::report::Finding;
use crate::source::SourceFile;

/// Markers that make a file lane-context.
const LANE_MARKERS: &[&str] = &["LaneBody", "install_lane_hook"];

/// Runs the rule.
pub fn check(file: &SourceFile, out: &mut Vec<Finding>) {
    let toks = &file.toks;
    let lane_context = toks
        .iter()
        .any(|t| LANE_MARKERS.iter().any(|m| t.is_ident(m)));
    if !lane_context {
        return;
    }
    let uses_condvar = toks.iter().any(|t| t.is_ident("Condvar"));
    for f in &file.fns {
        if f.body.1 <= f.body.0 || !file.is_production(f.toks.0) {
            continue;
        }
        for i in f.body.0..f.body.1 {
            let t = &toks[i];
            let is_method = |name: &str| {
                t.is_ident(name)
                    && i > 0
                    && toks[i - 1].is_punct('.')
                    && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
            };
            if is_method("lock") {
                out.push(Finding {
                    rule: "async-block",
                    file: file.rel_path.clone(),
                    line: t.line,
                    message: format!(
                        "`{}` calls a blocking `.lock()` in a lane-context file; a parked lane can hold the lock forever — park via verbs/timers or keep the state lane-local",
                        f.name
                    ),
                });
            }
            if uses_condvar && is_method("wait") {
                out.push(Finding {
                    rule: "async-block",
                    file: file.rel_path.clone(),
                    line: t.line,
                    message: format!(
                        "`{}` blocks on `Condvar::wait` in a lane-context file; the notifier may be a parked lane that never runs — use scheduler parks instead",
                        f.name
                    ),
                });
            }
        }
    }
}
