//! R9 `epoch-discipline` — routing-epoch writes only under the partition
//! lock.
//!
//! The routing table's epoch word is what tells every CN that the home
//! words changed. A mutation of the epoch that is not visibly under the
//! partition lock can publish a torn table: a CN that reads the new epoch
//! may still read the old home words, and the migration journal protocol
//! (lock → journal → copy → switch → publish) loses its atomic publish
//! point. The check is token-local: in any production function, a
//! mutation verb (`write`/`write_batch`/`faa`/`cas`/`masked_cas`) whose
//! arguments name the routing epoch (`route_epoch*`) must be preceded in
//! the same body by a mention of the partition lock (`part_lock*`) — the
//! acquire CAS, a lock-word read, or an assert on it. Reads of the epoch
//! (every client's staleness check) are unrestricted.

use crate::lexer::TokKind;
use crate::report::Finding;
use crate::source::{call_args, SourceFile};

use super::is_call;

/// Verbs that mutate remote memory.
const MUTATION_VERBS: &[&str] = &["write", "write_batch", "faa", "cas", "masked_cas"];

/// Runs the rule.
pub fn check(file: &SourceFile, out: &mut Vec<Finding>) {
    let toks = &file.toks;
    for f in &file.fns {
        if f.body.1 <= f.body.0 {
            continue;
        }
        for i in f.body.0..f.body.1.min(toks.len()) {
            if !file.is_production(i) || !MUTATION_VERBS.iter().any(|v| is_call(toks, i, v)) {
                continue;
            }
            let Some(args) = call_args(toks, i + 1) else {
                continue;
            };
            let names_epoch = args.iter().any(|&(s, e)| {
                toks[s..e]
                    .iter()
                    .any(|t| t.kind == TokKind::Ident && t.text.contains("route_epoch"))
            });
            if !names_epoch {
                continue;
            }
            let lock_in_scope = (f.body.0..i)
                .any(|j| toks[j].kind == TokKind::Ident && toks[j].text.contains("part_lock"));
            if !lock_in_scope {
                out.push(Finding {
                    rule: "epoch-discipline",
                    file: file.rel_path.clone(),
                    line: toks[i].line,
                    message: format!(
                        "`{}` mutates the routing epoch without the partition lock in scope; bump the epoch only while `part_lock` is held so a CN never sees a new epoch with old home words",
                        f.name
                    ),
                });
            }
        }
    }
}
