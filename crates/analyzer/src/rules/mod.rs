//! The rule registry and shared token-pattern helpers.
//!
//! Every rule is a pure function from a [`SourceFile`] to findings; the
//! engine runs them in a fixed order and sorts findings afterwards, so
//! rule execution order never shows in the output.

use crate::callgraph::CallGraph;
use crate::dataflow::Dataflow;
use crate::lexer::{int_value, Tok, TokKind};
use crate::report::Finding;
use crate::source::{call_args, SourceFile, TokRange};
use crate::workspace::Workspace;

pub mod asyncblock;
pub mod balance;
pub mod cq;
pub mod determinism;
pub mod epoch;
pub mod layout;
pub mod lockdiscipline;
pub mod lockorder;
pub mod maskconsistency;
pub mod phase;
pub mod tracecontext;
pub mod unsafety;
pub mod verbproto;

/// Rule identifiers, in registry order. `suppression` (malformed
/// suppression comments) is emitted by the engine itself.
pub const RULES: &[&str] = &[
    "determinism",
    "phase-balance",
    "lock-discipline",
    "unsafe-comment",
    "lockword-layout",
    "verb-protocol",
    "cq-discipline",
    "async-block",
    "epoch-discipline",
    "trace-context",
    "lock-order",
    "mask-consistency",
    "suppression",
];

/// Runs the per-file rules on `file`.
pub fn run_file(file: &SourceFile, out: &mut Vec<Finding>) {
    determinism::check(file, out);
    lockdiscipline::check_loops(file, out);
    unsafety::check(file, out);
    layout::check(file, out);
    verbproto::check(file, out);
    asyncblock::check(file, out);
    epoch::check(file, out);
}

/// Runs the whole-program rules once over the analyzed workspace.
pub fn run_workspace(ws: &Workspace, cg: &CallGraph, dfa: &Dataflow, out: &mut Vec<Finding>) {
    phase::check(ws, cg, dfa, out);
    lockdiscipline::check_release(ws, cg, dfa, out);
    cq::check(ws, cg, dfa, out);
    tracecontext::check(ws, cg, dfa, out);
    lockorder::check(ws, cg, dfa, out);
    maskconsistency::check(ws, out);
}

/// Whether the token at `i` is a *call* of the named function: an
/// identifier immediately followed by `(`, not a definition (`fn name`).
pub(crate) fn is_call(toks: &[Tok], i: usize, name: &str) -> bool {
    toks[i].is_ident(name)
        && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
        && !(i > 0 && toks[i - 1].is_ident("fn"))
}

/// The literal value of a single-token integer argument group, if it is
/// one. `u64::MAX` and `!0` count as [`u64::MAX`].
pub(crate) fn group_int(toks: &[Tok], g: TokRange) -> Option<u64> {
    let args = &toks[g.0..g.1];
    match args {
        [t] if t.kind == TokKind::Num => int_value(&t.text),
        [a, c1, c2, b]
            if a.is_ident("u64") && c1.is_punct(':') && c2.is_punct(':') && b.is_ident("MAX") =>
        {
            Some(u64::MAX)
        }
        [bang, t] if bang.is_punct('!') && t.kind == TokKind::Num && int_value(&t.text) == Some(0) =>
        {
            Some(u64::MAX)
        }
        _ => None,
    }
}

/// A `masked_cas` call site with its argument groups.
pub(crate) struct MaskedCasCall {
    /// Index of the `masked_cas` identifier token.
    pub idx: usize,
    /// 1-based line of the call.
    pub line: u32,
    /// Argument token ranges (`addr, compare, cmask, swap, smask`).
    pub args: Vec<TokRange>,
}

/// Finds every `masked_cas(...)` call in `range`.
pub(crate) fn masked_cas_calls(toks: &[Tok], range: TokRange) -> Vec<MaskedCasCall> {
    let mut out = Vec::new();
    for i in range.0..range.1.min(toks.len()) {
        if is_call(toks, i, "masked_cas") {
            if let Some(args) = call_args(toks, i + 1) {
                out.push(MaskedCasCall {
                    idx: i,
                    line: toks[i].line,
                    args,
                });
            }
        }
    }
    out
}

impl MaskedCasCall {
    /// Whether this call has the lock-acquire shape
    /// (`compare=0, cmask=1, swap=1, smask=1`), judged from literal
    /// arguments only.
    pub fn is_acquire_shape(&self, toks: &[Tok]) -> bool {
        self.args.len() == 5
            && group_int(toks, self.args[1]) == Some(0)
            && group_int(toks, self.args[2]) == Some(1)
            && group_int(toks, self.args[3]) == Some(1)
            && group_int(toks, self.args[4]) == Some(1)
    }
}
