//! R6 `verb-protocol` — masked-CAS call sites must use the documented
//! mask shapes.
//!
//! The lock word supports exactly two masked-CAS protocols (Fig. 8–9):
//!
//! * **acquire** — `compare = 0, cmask = 0x1, swap = 1, smask = 0x1`:
//!   only the lock bit participates, so the unknown vacancy/epoch bits
//!   never fail the compare and ride back in the returned old value;
//! * **full-word** — `cmask = smask = u64::MAX`: the reclaim takeover,
//!   which must observe the *entire* stale word to be race-free.
//!
//! Anything in between compares or swaps a partial word and silently
//! corrupts a neighbouring field when the layout shifts. Calls whose
//! masks are not compile-time literals are outside this rule's reach
//! (the simulator's property tests cover those).

use crate::report::Finding;
use crate::source::SourceFile;

use super::{group_int, masked_cas_calls};

/// Runs the rule.
pub fn check(file: &SourceFile, out: &mut Vec<Finding>) {
    let toks = &file.toks;
    for c in masked_cas_calls(toks, (0, toks.len())) {
        if !file.is_production(c.idx) || c.args.len() != 5 {
            continue;
        }
        let compare = group_int(toks, c.args[1]);
        let cmask = group_int(toks, c.args[2]);
        let swap = group_int(toks, c.args[3]);
        let smask = group_int(toks, c.args[4]);
        let (Some(compare), Some(cmask), Some(swap), Some(smask)) = (compare, cmask, swap, smask)
        else {
            continue; // non-literal masks: not statically checkable
        };
        let acquire = compare == 0 && cmask == 1 && swap == 1 && smask == 1;
        let full_word = cmask == u64::MAX && smask == u64::MAX;
        if !acquire && !full_word {
            out.push(Finding {
                rule: "verb-protocol",
                file: file.rel_path.clone(),
                line: c.line,
                message: format!(
                    "masked-CAS masks (compare={compare:#x}, cmask={cmask:#x}, swap={swap:#x}, smask={smask:#x}) match neither the acquire protocol (compare=0, cmask=smask=0x1) nor the full-word reclaim protocol"
                ),
            });
        }
    }
}
