//! R1 `determinism` — no wall clocks, ambient RNGs, sleeps, or
//! order-sensitive hash-map iteration in production code.
//!
//! The repo's headline guarantee (byte-identical traces, metrics and
//! BENCH JSON for identical seeds) dies silently the first time a
//! wall-clock read or a `HashMap` iteration order leaks into an export.
//! Production library code must use the simulator's virtual clock and
//! seeded RNGs, and must iterate only ordered containers (or sort first).

use crate::report::Finding;
use crate::source::SourceFile;

use super::is_call;

/// `A::b` call chains that read ambient nondeterminism.
const FORBIDDEN_PATHS: &[(&str, &str, &str)] = &[
    (
        "Instant",
        "now",
        "`Instant::now` reads the wall clock; use the endpoint's virtual clock",
    ),
    (
        "SystemTime",
        "now",
        "`SystemTime::now` reads the wall clock; use the endpoint's virtual clock",
    ),
    (
        "thread",
        "sleep",
        "`thread::sleep` stalls on wall time; charge the virtual clock (e.g. seeded backoff) instead",
    ),
];

/// Methods whose results depend on `HashMap`/`HashSet` iteration order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
    "retain",
];

/// Runs the rule.
pub fn check(file: &SourceFile, out: &mut Vec<Finding>) {
    let toks = &file.toks;
    for i in 0..toks.len() {
        if !file.is_production(i) {
            continue;
        }
        // Path calls: `Instant :: now (`
        for &(head, tail, msg) in FORBIDDEN_PATHS {
            if toks[i].is_ident(head)
                && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
                && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
                && toks.get(i + 3).is_some_and(|t| t.is_ident(tail))
            {
                out.push(Finding {
                    rule: "determinism",
                    file: file.rel_path.clone(),
                    line: toks[i].line,
                    message: msg.to_string(),
                });
            }
        }
        // Bare ambient-RNG constructors.
        if is_call(toks, i, "thread_rng") || is_call(toks, i, "random") {
            out.push(Finding {
                rule: "determinism",
                file: file.rel_path.clone(),
                line: toks[i].line,
                message: format!(
                    "`{}` draws from an ambient RNG; use a seeded `SmallRng`",
                    toks[i].text
                ),
            });
        }
    }

    // Order-sensitive iteration over values declared with a hash-map type.
    let tracked = tracked_hash_names(file);
    if tracked.is_empty() {
        return;
    }
    for i in 0..toks.len() {
        if !file.is_production(i) {
            continue;
        }
        // `name . iter_method (`
        if toks[i].kind == crate::lexer::TokKind::Ident
            && tracked.iter().any(|(n, _)| n == &toks[i].text)
            && toks.get(i + 1).is_some_and(|t| t.is_punct('.'))
            && toks
                .get(i + 2)
                .is_some_and(|t| ITER_METHODS.iter().any(|m| t.is_ident(m)))
            && toks.get(i + 3).is_some_and(|t| t.is_punct('('))
        {
            let ty = tracked
                .iter()
                .find(|(n, _)| n == &toks[i].text)
                .map(|(_, t)| t.as_str())
                .unwrap_or("HashMap");
            out.push(Finding {
                rule: "determinism",
                file: file.rel_path.clone(),
                line: toks[i].line,
                message: format!(
                    "`.{}()` on `{}`-typed `{}` iterates in nondeterministic order; sort first or use an ordered container",
                    toks[i + 2].text, ty, toks[i].text
                ),
            });
        }
    }
    // `for pat in <expr mentioning a tracked name> { ... }`
    for lp in &file.loops {
        if !toks[lp.toks.0].is_ident("for") || !file.is_production(lp.toks.0) {
            continue;
        }
        let Some(in_idx) = (lp.toks.0..lp.toks.1).find(|&j| toks[j].is_ident("in")) else {
            continue;
        };
        let Some(open) = (in_idx..lp.toks.1).find(|&j| toks[j].is_punct('{')) else {
            continue;
        };
        for j in in_idx + 1..open {
            if let Some((name, ty)) = tracked.iter().find(|(n, _)| toks[j].is_ident(n)) {
                // `map.len()`-style calls in range expressions are fine;
                // only flag when the tracked value itself is iterated
                // (not followed by a field/method access that was already
                // handled or is order-insensitive).
                if toks.get(j + 1).is_some_and(|t| t.is_punct('.')) {
                    continue;
                }
                out.push(Finding {
                    rule: "determinism",
                    file: file.rel_path.clone(),
                    line: toks[lp.toks.0].line,
                    message: format!(
                        "`for` over `{ty}`-typed `{name}` iterates in nondeterministic order; sort first or use an ordered container"
                    ),
                });
                break;
            }
        }
    }
}

/// Collects names declared with a `HashMap`/`HashSet` type, from type
/// annotations (`name: HashMap<...>`, struct fields, params) and from
/// `let name = HashMap::new()`-style initializers.
fn tracked_hash_names(file: &SourceFile) -> Vec<(String, String)> {
    let toks = &file.toks;
    let mut tracked: Vec<(String, String)> = Vec::new();
    let mut add = |name: &str, ty: &str| {
        if !tracked.iter().any(|(n, _)| n == name) {
            tracked.push((name.to_string(), ty.to_string()));
        }
    };
    for i in 0..toks.len() {
        // `name : ... HashMap < ...` — scan the annotation until a
        // top-level terminator, tracking angle-bracket depth so generic
        // arguments don't end the type early.
        if toks[i].kind == crate::lexer::TokKind::Ident
            && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && !toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && !(i > 0 && toks[i - 1].is_punct(':'))
        {
            let mut depth = 0i32;
            let mut j = i + 2;
            while j < toks.len() {
                let t = &toks[j];
                if t.is_punct('<') {
                    depth += 1;
                } else if t.is_punct('>') {
                    depth -= 1;
                    if depth < 0 {
                        break;
                    }
                } else if depth == 0
                    && (t.is_punct(',')
                        || t.is_punct(';')
                        || t.is_punct('=')
                        || t.is_punct(')')
                        || t.is_punct('{')
                        || t.is_punct('}'))
                {
                    break;
                } else if t.is_ident("HashMap") || t.is_ident("HashSet") {
                    add(&toks[i].text, &t.text);
                }
                j += 1;
            }
        }
        // `let [mut] name = ... HashMap ... ;`
        if toks[i].is_ident("let") {
            let mut j = i + 1;
            if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
                j += 1;
            }
            let Some(name_tok) = toks.get(j) else { continue };
            if name_tok.kind != crate::lexer::TokKind::Ident {
                continue;
            }
            if !toks.get(j + 1).is_some_and(|t| t.is_punct('=')) {
                continue; // annotated lets are covered by the `:` pattern
            }
            let mut k = j + 2;
            let mut depth = 0i32;
            while k < toks.len() {
                let t = &toks[k];
                if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                    depth += 1;
                } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                    depth -= 1;
                } else if t.is_punct(';') && depth == 0 {
                    break;
                } else if t.is_ident("HashMap") || t.is_ident("HashSet") {
                    add(&name_tok.text, &t.text);
                }
                k += 1;
            }
        }
    }
    tracked
}
