//! R7 `cq-discipline` — every posted WQE must be polled before the
//! scope returns.
//!
//! `Qp::post_wqe` hands back a [`WqeTicket`] that stays on the completion
//! queue until `Qp::poll_wqe` reaps it; a ticket leaked by an early
//! `return` or `?` leaves a phantom completion outstanding, which skews
//! the CQ-depth histogram and (in a real NIC) would eventually stall the
//! queue pair. A function that posts must poll on all control paths.

use crate::report::Finding;
use crate::source::SourceFile;

use super::is_call;

/// The QP model's own methods legitimately see only one side of the pair.
const EXEMPT_FNS: &[&str] = &["post_wqe", "poll_wqe"];

/// Runs the rule.
pub fn check(file: &SourceFile, out: &mut Vec<Finding>) {
    let toks = &file.toks;
    for f in &file.fns {
        if f.body.1 <= f.body.0 || !file.is_production(f.toks.0) {
            continue;
        }
        if EXEMPT_FNS.contains(&f.name.as_str()) {
            continue;
        }
        let posts: Vec<usize> = (f.body.0..f.body.1)
            .filter(|&i| is_call(toks, i, "post_wqe"))
            .collect();
        let polls: Vec<usize> = (f.body.0..f.body.1)
            .filter(|&i| is_call(toks, i, "poll_wqe"))
            .collect();
        if posts.is_empty() && polls.is_empty() {
            continue;
        }
        if posts.len() > polls.len() {
            out.push(Finding {
                rule: "cq-discipline",
                file: file.rel_path.clone(),
                line: f.line,
                message: format!(
                    "`{}` posts {} WQE(s) but polls {}; every `post_wqe` ticket must reach `poll_wqe` before the scope returns",
                    f.name,
                    posts.len(),
                    polls.len()
                ),
            });
            continue;
        }
        // Counts balance: look for an escape hatch while a ticket could
        // still be outstanding (between the first post and the last poll).
        let (first, last) = (posts.first().copied().unwrap_or(0), polls.last().copied().unwrap_or(0));
        if first >= last {
            continue;
        }
        for t in toks.iter().take(last).skip(first) {
            if t.is_ident("return") || t.is_punct('?') {
                out.push(Finding {
                    rule: "cq-discipline",
                    file: file.rel_path.clone(),
                    line: f.line,
                    message: format!(
                        "`{}` has `{}` between `post_wqe` and `poll_wqe` (line {}); an early exit abandons the outstanding completion",
                        f.name,
                        t.text,
                        t.line
                    ),
                });
                break;
            }
        }
    }
}
