//! R7 `cq-discipline` — every posted WQE must be polled before the
//! scope returns, anywhere in the call graph.
//!
//! `Qp::post_wqe` hands back a [`WqeTicket`] that stays on the completion
//! queue until `Qp::poll_wqe` reaps it; a ticket leaked by an early
//! `return` or `?` leaves a phantom completion outstanding, which skews
//! the CQ-depth histogram and (in a real NIC) would eventually stall the
//! queue pair. A function that posts must poll on all control paths —
//! with posts and polls counted *effectively*: a callee with net `+1`
//! WQE counts as a post at its call site, so a doorbell helper that
//! posts without reaping surfaces in its caller, and a drain helper
//! discharges its caller's tickets.

use crate::callgraph::CallGraph;
use crate::dataflow::{Counted, Dataflow};
use crate::report::Finding;
use crate::workspace::Workspace;

use super::balance::{self, PairSpec};

/// The rule's configuration for the shared balanced-pair engine. The QP
/// model's own verbs (`post_wqe`, `poll_wqe`) and doorbell helpers carry
/// `wqe` in their name and are exempt by fragment.
const SPEC: PairSpec = PairSpec {
    rule: "cq-discipline",
    kind: Counted::Wqe as usize,
    wrapper_fragments: &["wqe"],
    unbalanced_msg: |name, opens, closes| {
        format!(
            "`{name}` posts {opens} WQE(s) but polls {closes}; every `post_wqe` ticket must reach `poll_wqe` before the scope returns",
        )
    },
    escape_msg: |name, tok, line| {
        format!(
            "`{name}` has `{tok}` between `post_wqe` and `poll_wqe` (line {line}); an early exit abandons the outstanding completion",
        )
    },
};

/// Runs the rule over the workspace.
pub fn check(ws: &Workspace, cg: &CallGraph, dfa: &Dataflow, out: &mut Vec<Finding>) {
    balance::run(ws, cg, dfa, out, &SPEC);
}
