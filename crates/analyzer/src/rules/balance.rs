//! Shared engine for the balanced-pair rules (`phase-balance`,
//! `cq-discipline`, `trace-context`).
//!
//! Each of those rules polices one counted resource kind: the effective
//! open/close counts come from the dataflow summaries, so an open (or
//! close) performed by a resolved callee counts at the caller — a leak
//! hidden behind a helper surfaces, and a close delegated to a helper
//! lints clean. Functions whose *name* carries the resource's vocabulary
//! (e.g. `phase_begin`, `in_phase` for phase frames) are delegation
//! wrappers: their nonzero net is their contract, accounted for at their
//! call sites, so they are exempt from firing themselves.

use crate::callgraph::CallGraph;
use crate::dataflow::{balance_of, Dataflow};
use crate::report::Finding;
use crate::workspace::Workspace;

/// One balanced-pair rule's configuration.
pub struct PairSpec {
    /// Rule id for findings.
    pub rule: &'static str,
    /// Counted resource kind index ([`crate::dataflow::Counted`]).
    pub kind: usize,
    /// Name fragments marking delegation wrappers (exempt from firing).
    pub wrapper_fragments: &'static [&'static str],
    /// Renders the unbalanced-counts message (`name`, opens, closes).
    pub unbalanced_msg: fn(&str, u32, u32) -> String,
    /// Renders the escape-hatch message (`name`, escape token, line).
    pub escape_msg: fn(&str, &str, u32) -> String,
}

/// Runs one balanced-pair rule over the workspace.
pub fn run(ws: &Workspace, cg: &CallGraph, dfa: &Dataflow, out: &mut Vec<Finding>, spec: &PairSpec) {
    for gid in 0..ws.fns.len() {
        let (file, f) = ws.fn_at(gid);
        if f.body.1 <= f.body.0 || !file.is_production(f.toks.0) {
            continue;
        }
        if spec.wrapper_fragments.iter().any(|w| f.name.contains(w)) {
            continue;
        }
        let b = balance_of(ws, cg, dfa, gid, spec.kind);
        if b.opens == 0 && b.closes == 0 {
            continue;
        }
        if b.opens != b.closes {
            out.push(Finding {
                rule: spec.rule,
                file: file.rel_path.clone(),
                line: f.line,
                message: (spec.unbalanced_msg)(&f.name, b.opens, b.closes),
            });
            continue;
        }
        // Balanced counts: police the open interval for escape hatches.
        let (Some(first), Some(last)) = (b.first_open, b.last_close) else {
            continue;
        };
        for t in file.toks.iter().take(last).skip(first) {
            if t.is_ident("return") || t.is_punct('?') {
                out.push(Finding {
                    rule: spec.rule,
                    file: file.rel_path.clone(),
                    line: f.line,
                    message: (spec.escape_msg)(&f.name, &t.text, t.line),
                });
                break;
            }
        }
    }
}
