//! R12 `mask-consistency` — every masked-CAS literal mask repo-wide must
//! be a lock-word field mask.
//!
//! The masked-CAS verb compares and swaps only the bits selected by
//! `cmask`/`smask`. A mask that does not coincide with one of the packed
//! lock-word fields (Fig. 8–9) silently reads or clobbers a *slice* of a
//! neighbouring field — the classic drift bug when the layout changes
//! but a hand-written literal does not. This rule derives the legal mask
//! set from the `lockword.rs` constants themselves (so the allowed set
//! moves with the layout and never has to be edited): each field's mask,
//! plus the full word for the reclaim CAS. Protocols with a documented
//! different packing get a *named allowlist entry* scoped to their crate
//! rather than a free-floating literal exception.
//!
//! Non-literal masks (named constants, expressions) are out of scope:
//! they derive from the layout by construction, which is exactly the
//! style this rule pushes hand-written literals toward.

use crate::report::Finding;
use crate::workspace::Workspace;

use super::layout::parse_consts;
use super::{group_int, masked_cas_calls};

/// Documented allowlist: (entry name, mask value, path prefix). An entry
/// admits its mask only under its path — the same literal elsewhere
/// still fires.
const ALLOWLIST: &[(&str, u64, &str)] = &[
    // SMART's lock word packs lock (bit 0) and obsolete (bit 1); its
    // 2-bit cmask is that protocol's documented acquire shape.
    ("smart-lock-obsolete", 0b11, "crates/smart/"),
];

/// The constants a `lockword.rs` must define to serve as the mask source.
const REQUIRED: &[&str] = &[
    "LOCK_BIT",
    "ARGMAX_SHIFT",
    "ARGMAX_MASK",
    "VACANCY_SHIFT",
    "VACANCY_BITS",
    "EPOCH_SHIFT",
    "EPOCH_MASK",
];

/// The documented layout (bit 0 / 1..=10 / 11..=55 / 56..=63), used when
/// the workspace has no parseable `lockword.rs` (fixture corpora).
const DEFAULT_FIELDS: [u64; 4] = [0x1, 0x3FF << 1, ((1u64 << 45) - 1) << 11, 0xFFu64 << 56];

/// Runs the rule over the workspace.
pub fn check(ws: &Workspace, out: &mut Vec<Finding>) {
    let fields = derive_fields(ws).unwrap_or(DEFAULT_FIELDS);
    let allowed_desc = format!(
        "lock {:#x}, argmax {:#x}, vacancy {:#x}, epoch {:#x}, or the full word",
        fields[0], fields[1], fields[2], fields[3]
    );
    for file in &ws.files {
        for c in masked_cas_calls(&file.toks, (0, file.toks.len())) {
            if !file.is_production(c.idx) || c.args.len() != 5 {
                continue;
            }
            for (arg, label) in [(2usize, "cmask"), (4usize, "smask")] {
                let Some(v) = group_int(&file.toks, c.args[arg]) else {
                    continue; // non-literal: derived from constants
                };
                if v == u64::MAX || fields.contains(&v) {
                    continue;
                }
                if ALLOWLIST
                    .iter()
                    .any(|&(_, m, prefix)| m == v && file.rel_path.starts_with(prefix))
                {
                    continue;
                }
                out.push(Finding {
                    rule: "mask-consistency",
                    file: file.rel_path.clone(),
                    line: c.line,
                    message: format!(
                        "`masked_cas` {label} {v:#x} is not a lock-word field mask ({allowed_desc}); CAS masks must derive from the `lockword.rs` constants or a named allowlist entry",
                    ),
                });
            }
        }
    }
}

/// Derives the four field masks from the first `lockword.rs` in the
/// workspace that defines all required constants. Returns `None` when no
/// file qualifies or a field overflows the 64-bit word.
fn derive_fields(ws: &Workspace) -> Option<[u64; 4]> {
    let src = ws
        .files
        .iter()
        .filter(|f| f.rel_path.rsplit('/').next() == Some("lockword.rs"))
        .find_map(|f| {
            let consts = parse_consts(f);
            REQUIRED
                .iter()
                .all(|n| consts.contains_key(*n))
                .then_some(consts)
        })?;
    let get = |n: &str| src[n].0;
    let shl = |m: u64, s: u64| {
        if s >= 64 {
            None
        } else {
            Some(m << s)
        }
    };
    let vac_bits = get("VACANCY_BITS");
    let vac_mask = if vac_bits >= 64 {
        u64::MAX
    } else {
        (1u64 << vac_bits) - 1
    };
    Some([
        get("LOCK_BIT"),
        shl(get("ARGMAX_MASK"), get("ARGMAX_SHIFT"))?,
        shl(vac_mask, get("VACANCY_SHIFT"))?,
        shl(get("EPOCH_MASK"), get("EPOCH_SHIFT"))?,
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;
    use crate::workspace::Workspace;

    fn run(files: Vec<(&str, &str)>) -> Vec<Finding> {
        let ws = Workspace::new(
            files
                .into_iter()
                .map(|(p, s)| SourceFile::new(p.to_string(), s))
                .collect(),
        );
        let mut out = Vec::new();
        check(&ws, &mut out);
        out
    }

    #[test]
    fn acquire_shape_and_full_word_pass() {
        let f = run(vec![(
            "crates/x/src/lib.rs",
            "fn lock_it(ep: &mut Ep, a: u64) { ep.masked_cas(a, 0, 1, 1, 1); }\n\
             fn swap_all(ep: &mut Ep, a: u64, old: u64, new: u64) { ep.masked_cas(a, old, u64::MAX, new, !0); }",
        )]);
        assert!(f.is_empty(), "unexpected findings: {f:?}");
    }

    #[test]
    fn stray_literal_mask_fires() {
        let f = run(vec![(
            "crates/x/src/lib.rs",
            "fn half_word(ep: &mut Ep, a: u64) { ep.masked_cas(a, 0, 0xFFFF_FFFF, 1, 1); }",
        )]);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("cmask 0xffffffff"));
    }

    #[test]
    fn allowlist_is_path_scoped() {
        let smart = "fn lock_it(ep: &mut Ep, a: u64) { ep.masked_cas(a, 0, 0b11, 1, 1); }";
        let f = run(vec![("crates/smart/src/node.rs", smart)]);
        assert!(f.is_empty(), "allowlisted in crates/smart: {f:?}");
        let f = run(vec![("crates/core/src/leaf.rs", smart)]);
        assert_eq!(f.len(), 1, "same mask outside the allowlisted path fires");
    }

    #[test]
    fn masks_derive_from_lockword_constants() {
        // A deviant (but parseable) layout: epoch moved to bits 48..=55.
        let lockword = "pub const LOCK_BIT: u64 = 0x1;\n\
             pub const ARGMAX_SHIFT: u64 = 1;\n\
             pub const ARGMAX_MASK: u64 = 0x3FF;\n\
             pub const VACANCY_SHIFT: u64 = 11;\n\
             pub const VACANCY_BITS: u64 = 37;\n\
             pub const EPOCH_SHIFT: u64 = 48;\n\
             pub const EPOCH_MASK: u64 = 0xFF;";
        let user = "fn bump(ep: &mut Ep, a: u64) { ep.masked_cas(a, 0, 0xFF000000000000, 1, 1); }";
        let f = run(vec![
            ("crates/core/src/lockword.rs", lockword),
            ("crates/x/src/lib.rs", user),
        ]);
        assert!(f.is_empty(), "mask matching the *defined* epoch field passes: {f:?}");
        // Under the documented default layout the same literal fires.
        let f = run(vec![("crates/x/src/lib.rs", user)]);
        assert_eq!(f.len(), 1);
    }
}
