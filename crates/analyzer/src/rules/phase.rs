//! R2 `phase-balance` — every manually opened phase frame must close on
//! all control paths.
//!
//! `Endpoint::phase_begin` returns a [`PhaseFrame`] that must reach
//! `Endpoint::phase_end`; a frame leaked by an early `return` or `?`
//! corrupts phase attribution for the rest of the client's life (the
//! ambient phase never pops). The closure-based `in_phase` helper is
//! inherently balanced; this rule polices the manual pairs.

use crate::report::Finding;
use crate::source::SourceFile;

use super::is_call;

/// Delegation wrappers that legitimately call only one side of the pair.
const EXEMPT_FNS: &[&str] = &["phase_begin", "phase_end"];

/// Runs the rule.
pub fn check(file: &SourceFile, out: &mut Vec<Finding>) {
    let toks = &file.toks;
    for f in &file.fns {
        if f.body.1 <= f.body.0 || !file.is_production(f.toks.0) {
            continue;
        }
        if EXEMPT_FNS.contains(&f.name.as_str()) {
            continue;
        }
        let begins: Vec<usize> = (f.body.0..f.body.1)
            .filter(|&i| is_call(toks, i, "phase_begin"))
            .collect();
        let ends: Vec<usize> = (f.body.0..f.body.1)
            .filter(|&i| is_call(toks, i, "phase_end"))
            .collect();
        if begins.is_empty() && ends.is_empty() {
            continue;
        }
        if begins.len() != ends.len() {
            out.push(Finding {
                rule: "phase-balance",
                file: file.rel_path.clone(),
                line: f.line,
                message: format!(
                    "`{}` opens {} phase frame(s) but closes {}; every `phase_begin` must reach `phase_end` on all paths",
                    f.name,
                    begins.len(),
                    ends.len()
                ),
            });
            continue;
        }
        // Balanced counts: look for an escape hatch between the first
        // open and the last close.
        let (first, last) = (begins[0], *ends.last().unwrap());
        for t in toks.iter().take(last).skip(first) {
            if t.is_ident("return") || t.is_punct('?') {
                out.push(Finding {
                    rule: "phase-balance",
                    file: file.rel_path.clone(),
                    line: f.line,
                    message: format!(
                        "`{}` has `{}` between `phase_begin` and `phase_end` (line {}); an early exit leaks the open frame",
                        f.name,
                        t.text,
                        t.line
                    ),
                });
                break;
            }
        }
    }
}
