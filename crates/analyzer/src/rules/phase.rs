//! R2 `phase-balance` — every manually opened phase frame must close on
//! all control paths, anywhere in the call graph.
//!
//! `Endpoint::phase_begin` returns a [`PhaseFrame`] that must reach
//! `Endpoint::phase_end`; a frame leaked by an early `return` or `?`
//! corrupts phase attribution for the rest of the client's life (the
//! ambient phase never pops). The closure-based `in_phase` helper is
//! inherently balanced; this rule polices the manual pairs — including
//! pairs split across functions: a wrapper with net `+1` counts as an
//! open at each call site, so a leak hidden behind a helper still fires
//! here, while open-here/close-in-callee code lints clean.

use crate::callgraph::CallGraph;
use crate::dataflow::{Counted, Dataflow};
use crate::report::Finding;
use crate::workspace::Workspace;

use super::balance::{self, PairSpec};

/// The rule's configuration for the shared balanced-pair engine.
/// Wrapper exemption is by name fragment: `phase_begin`, `phase_end`,
/// `in_phase` and friends all carry `phase` in their name, which is the
/// vocabulary contract the old exact-name allowlist approximated.
const SPEC: PairSpec = PairSpec {
    rule: "phase-balance",
    kind: Counted::Phase as usize,
    wrapper_fragments: &["phase"],
    unbalanced_msg: |name, opens, closes| {
        format!(
            "`{name}` opens {opens} phase frame(s) but closes {closes}; every `phase_begin` must reach `phase_end` on all paths",
        )
    },
    escape_msg: |name, tok, line| {
        format!(
            "`{name}` has `{tok}` between `phase_begin` and `phase_end` (line {line}); an early exit leaks the open frame",
        )
    },
};

/// Runs the rule over the workspace.
pub fn check(ws: &Workspace, cg: &CallGraph, dfa: &Dataflow, out: &mut Vec<Finding>) {
    balance::run(ws, cg, dfa, out, &SPEC);
}
