//! R11 `lock-order` — the static lock acquisition-order graph must be
//! acyclic.
//!
//! CHIME holds three classes of lock: CN-side `LocalLockTable` slots
//! (RAII guards from `local_lock`/`acquire_with`/`try_acquire`), the
//! per-partition migration lock (`part_lock` CAS 0→1), and the on-leaf
//! lock word (the masked-CAS acquire verb). Any two functions that take
//! two classes in opposite orders can deadlock under contention — and
//! because lane parking has no timeout on the local slot, such a
//! deadlock never recovers. This rule scans every production function
//! with a held-set automaton: each acquisition while another class is
//! held adds a directed edge `held → acquired` to a repo-wide graph
//! (acquisitions *inside a callee* count at the call site when the
//! callee leaks that class, so a helper that returns holding the leaf
//! lock orders `local → leaf` at its caller). Any cycle in the final
//! 3-node graph is a finding, anchored at one witnessing edge with the
//! full cycle spelled out.
//!
//! Local-slot acquisitions propagate only through the named table verbs,
//! not through arbitrary callees: the guard is scope-bound, so a callee
//! that takes and drops a slot internally must not poison its caller's
//! held set.

use std::collections::{BTreeMap, BTreeSet};

use crate::callgraph::CallGraph;
use crate::dataflow::{
    args_mention_part_lock, class_name, write_targets_lock, Dataflow, LockClass, LOCAL_VERBS,
    RELEASE_IDENTS,
};
use crate::lexer::TokKind;
use crate::report::Finding;
use crate::workspace::Workspace;

use super::masked_cas_calls;

const CLASSES: [LockClass; 3] = [LockClass::Local, LockClass::Part, LockClass::Leaf];

fn cls(b: u8) -> LockClass {
    match b {
        0 => LockClass::Local,
        1 => LockClass::Part,
        _ => LockClass::Leaf,
    }
}

/// Runs the rule over the workspace.
pub fn check(ws: &Workspace, cg: &CallGraph, dfa: &Dataflow, out: &mut Vec<Finding>) {
    // Edge (held, acquired) → first witness (file, line). Files are in
    // canonical sorted order, so the witness is deterministic.
    let mut edges: BTreeMap<(u8, u8), (String, u32)> = BTreeMap::new();
    for gid in 0..ws.fns.len() {
        scan_fn(ws, cg, dfa, gid, &mut edges);
    }

    // Enumerate the simple cycles of the 3-node graph directly.
    let has = |a: u8, b: u8| edges.contains_key(&(a, b));
    let mut cycles: Vec<Vec<(u8, u8)>> = Vec::new();
    for a in 0u8..3 {
        for b in (a + 1)..3 {
            if has(a, b) && has(b, a) {
                cycles.push(vec![(a, b), (b, a)]);
            }
        }
    }
    for (a, b, c) in [(0u8, 1u8, 2u8), (0u8, 2u8, 1u8)] {
        if has(a, b) && has(b, c) && has(c, a) {
            cycles.push(vec![(a, b), (b, c), (c, a)]);
        }
    }

    for cyc in cycles {
        let desc: Vec<String> = cyc
            .iter()
            .map(|&(a, b)| {
                let (fpath, line) = &edges[&(a, b)];
                format!("{} → {} ({fpath}:{line})", class_name(cls(a)), class_name(cls(b)))
            })
            .collect();
        let (file, line) = edges[&cyc[0]].clone();
        out.push(Finding {
            rule: "lock-order",
            file,
            line,
            message: format!(
                "lock acquisition-order cycle: {}; a cycle in the static lock-order graph is a deadlock waiting for contention",
                desc.join(", ")
            ),
        });
    }
}

/// Runs the held-set automaton over one function body, adding edges.
fn scan_fn(
    ws: &Workspace,
    cg: &CallGraph,
    dfa: &Dataflow,
    gid: usize,
    edges: &mut BTreeMap<(u8, u8), (String, u32)>,
) {
    let (file, f) = ws.fn_at(gid);
    if f.body.1 <= f.body.0 || !file.is_production(f.toks.0) {
        return;
    }
    let toks = &file.toks;
    let acquire_cas: BTreeSet<usize> = masked_cas_calls(toks, f.body)
        .iter()
        .filter(|c| c.is_acquire_shape(toks))
        .map(|c| c.idx)
        .collect();
    let mut held: BTreeSet<u8> = BTreeSet::new();
    let mut sites = cg.sites[gid].iter().peekable();
    for i in f.body.0..f.body.1.min(toks.len()) {
        let site = match sites.peek() {
            Some(s) if s.tok == i => sites.next(),
            _ => None,
        };
        let t = &toks[i];
        let mut rel: u8 = 0;
        let mut acq: u8 = 0;
        if t.kind == TokKind::Ident && RELEASE_IDENTS.iter().any(|r| t.is_ident(r)) {
            rel |= 1 << LockClass::Leaf as u8;
        }
        let is_call_tok = t.kind == TokKind::Ident
            && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
            && !(i > 0 && toks[i - 1].is_ident("fn"));
        if is_call_tok {
            let name = t.text.as_str();
            if name == "write" || name == "write_batch" {
                if args_mention_part_lock(toks, i) {
                    rel |= 1 << LockClass::Part as u8;
                } else if write_targets_lock(toks, i) {
                    rel |= 1 << LockClass::Leaf as u8;
                }
            }
            if LOCAL_VERBS.contains(&name) {
                acq |= 1 << LockClass::Local as u8;
            } else if name == "cas" && args_mention_part_lock(toks, i) {
                acq |= 1 << LockClass::Part as u8;
            } else if acquire_cas.contains(&i) {
                acq |= 1 << LockClass::Leaf as u8;
            } else if rel == 0 {
                // A non-verb call that *leaks* the part or leaf lock
                // acquires it on the caller's behalf — but only when
                // every same-named definition agrees (the local-table
                // `acquire` and the leaf-lock `acquire` share a name;
                // ambiguity stays quiet). Local stays verb-only: a
                // dropped guard inside a callee must not poison the
                // caller's held set.
                if let Some(s) = site {
                    for c in [LockClass::Part, LockClass::Leaf] {
                        if !s.callees.is_empty() && s.callees.iter().all(|&d| dfa.summaries[d].leaks(c)) {
                            acq |= 1 << c as u8;
                        }
                    }
                }
            }
        }
        for c in CLASSES {
            if rel & (1 << c as u8) != 0 {
                held.remove(&(c as u8));
            }
        }
        for c in CLASSES {
            if acq & (1 << c as u8) == 0 {
                continue;
            }
            for &h in held.iter() {
                if h != c as u8 {
                    edges
                        .entry((h, c as u8))
                        .or_insert_with(|| (file.rel_path.clone(), t.line));
                }
            }
        }
        for c in CLASSES {
            if acq & (1 << c as u8) != 0 {
                held.insert(c as u8);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataflow::analyze;
    use crate::source::SourceFile;

    fn findings(src: &str) -> Vec<Finding> {
        let ws = Workspace::new(vec![SourceFile::new("crates/x/src/lib.rs".into(), src)]);
        let cg = CallGraph::build(&ws);
        let dfa = analyze(&ws, &cg);
        let mut out = Vec::new();
        check(&ws, &cg, &dfa, &mut out);
        out
    }

    #[test]
    fn consistent_order_is_clean() {
        let f = findings(
            "fn op_a(ep: &mut Ep, t: &Table) { let g = t.local_lock(1); ep.masked_cas(7, 0, 1, 1, 1); ep.unlock_writes(7); }\n\
             fn op_b(ep: &mut Ep, t: &Table) { let g = t.local_lock(2); ep.masked_cas(9, 0, 1, 1, 1); ep.unlock_writes(9); }",
        );
        assert!(f.is_empty(), "same order everywhere: {f:?}");
    }

    #[test]
    fn opposite_orders_fire() {
        let f = findings(
            "fn op_a(ep: &mut Ep, t: &Table) { let g = t.local_lock(1); ep.masked_cas(7, 0, 1, 1, 1); ep.unlock_writes(7); }\n\
             fn op_b(ep: &mut Ep, t: &Table) { ep.masked_cas(9, 0, 1, 1, 1); let g = t.local_lock(2); ep.unlock_writes(9); }",
        );
        assert_eq!(f.len(), 1, "one 2-cycle: {f:?}");
        assert!(f[0].message.contains("local-slot → leaf-lock"));
        assert!(f[0].message.contains("leaf-lock → local-slot"));
    }

    #[test]
    fn release_clears_the_held_set() {
        // The leaf lock is released before the slot is taken: no edge back.
        let f = findings(
            "fn op_a(ep: &mut Ep, t: &Table) { let g = t.local_lock(1); ep.masked_cas(7, 0, 1, 1, 1); ep.unlock_writes(7); }\n\
             fn op_b(ep: &mut Ep, t: &Table) { ep.masked_cas(9, 0, 1, 1, 1); ep.unlock_writes(9); let g = t.local_lock(2); }",
        );
        assert!(f.is_empty(), "no overlap, no cycle: {f:?}");
    }

    #[test]
    fn callee_leak_counts_at_the_call_site() {
        // `lock_leaf` leaks the leaf lock; taking the part lock while the
        // caller still holds it orders leaf → part, opposite of `migrate`.
        let f = findings(
            "fn lock_leaf(ep: &mut Ep, a: u64) { ep.masked_cas(a, 0, 1, 1, 1); }\n\
             fn op_a(ep: &mut Ep, ctl: &Ctl, a: u64) { lock_leaf(ep, a); ctl.cas(part_lock_addr(), 0, 1); ep.unlock_writes(a); ctl.write(part_lock_addr(), 0); }\n\
             fn op_b(ep: &mut Ep, ctl: &Ctl, a: u64) { ctl.cas(part_lock_addr(), 0, 1); lock_leaf(ep, a); ep.unlock_writes(a); ctl.write(part_lock_addr(), 0); }",
        );
        assert_eq!(f.len(), 1, "part/leaf 2-cycle: {f:?}");
        assert!(f[0].message.contains("part-lock"));
    }
}
