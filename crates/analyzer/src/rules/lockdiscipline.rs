//! R3 `lock-discipline` — lock acquisitions must be released and retry
//! loops must back off.
//!
//! Two clauses, both scoped to the masked-CAS lock-acquire verb
//! (`masked_cas(addr, 0, 1, 1, 1)`, the Fig. 8 protocol):
//!
//! 1. **release** — a function that acquires the lock must also release
//!    or reclaim it on some path (an `unlock`-family call, or a WRITE
//!    whose target names the lock address). Protocol helpers whose name
//!    declares the contract (`lock`, `acquire`, `unlock`, `reclaim`)
//!    hand the obligation to their caller and are exempt.
//! 2. **backoff** — a retry loop that issues masked-CAS verbs must
//!    invoke the seeded backoff inside the loop; bare spinning turns one
//!    conflict into a convoy and (worse) makes retry timing depend on
//!    host scheduling.

use crate::report::Finding;
use crate::source::SourceFile;

use super::{is_call, masked_cas_calls};

/// Identifiers whose presence in a function counts as release/reclaim
/// evidence.
const RELEASE_IDENTS: &[&str] = &[
    "unlock",
    "unlock_writes",
    "write_and_unlock",
    "release",
    "reclaim",
    "reclaimed",
];

/// Name fragments that mark a function as a locking-protocol helper.
const HELPER_FRAGMENTS: &[&str] = &["lock", "acquire", "reclaim"];

/// Runs the rule.
pub fn check(file: &SourceFile, out: &mut Vec<Finding>) {
    let toks = &file.toks;

    // Clause 1: acquire implies release, per function.
    for f in &file.fns {
        if f.body.1 <= f.body.0 || !file.is_production(f.toks.0) {
            continue;
        }
        if HELPER_FRAGMENTS.iter().any(|h| f.name.contains(h)) {
            continue;
        }
        let acquires = masked_cas_calls(toks, f.body)
            .into_iter()
            .any(|c| c.is_acquire_shape(toks));
        if !acquires {
            continue;
        }
        let released = (f.body.0..f.body.1).any(|i| {
            RELEASE_IDENTS.iter().any(|r| toks[i].is_ident(r))
                || ((is_call(toks, i, "write") || is_call(toks, i, "write_batch"))
                    && write_targets_lock(file, i))
        });
        if !released {
            out.push(Finding {
                rule: "lock-discipline",
                file: file.rel_path.clone(),
                line: f.line,
                message: format!(
                    "`{}` acquires the lock word with a masked-CAS but never releases or reclaims it; every exit path must unlock",
                    f.name
                ),
            });
        }
    }

    // Clause 2: masked-CAS retry loops must invoke the seeded backoff.
    // Only the innermost loop containing each call is held responsible.
    let mut flagged: Vec<u32> = Vec::new();
    for c in masked_cas_calls(toks, (0, toks.len())) {
        if !file.is_production(c.idx) {
            continue;
        }
        let innermost = file
            .loops
            .iter()
            .filter(|l| l.toks.0 <= c.idx && c.idx < l.toks.1)
            .min_by_key(|l| l.toks.1 - l.toks.0);
        let Some(lp) = innermost else { continue };
        let has_backoff =
            (lp.toks.0..lp.toks.1).any(|i| toks[i].text.to_ascii_lowercase().contains("backoff"));
        if !has_backoff && !flagged.contains(&lp.line) {
            flagged.push(lp.line);
            out.push(Finding {
                rule: "lock-discipline",
                file: file.rel_path.clone(),
                line: lp.line,
                message: "retry loop issues a masked-CAS without invoking the seeded backoff; bare spinning convoys under contention".to_string(),
            });
        }
    }
}

/// Whether the `write`/`write_batch` call at `i` mentions a lock-ish
/// address in its arguments (e.g. `lock_addr`).
fn write_targets_lock(file: &SourceFile, i: usize) -> bool {
    let toks = &file.toks;
    match crate::source::call_args(toks, i + 1) {
        Some(args) => args.iter().any(|&(s, e)| {
            toks[s..e]
                .iter()
                .any(|t| t.kind == crate::lexer::TokKind::Ident && t.text.contains("lock"))
        }),
        None => false,
    }
}
