//! R3 `lock-discipline` — lock acquisitions must be released and retry
//! loops must back off.
//!
//! Two clauses, both scoped to the masked-CAS lock-acquire verb
//! (`masked_cas(addr, 0, 1, 1, 1)`, the Fig. 8 protocol):
//!
//! 1. **release** ([`check_release`], whole-program) — a function that
//!    acquires the lock (directly, or by calling a locking helper that
//!    hands the obligation up) must release it on some path *anywhere in
//!    its call graph*: an `unlock`-family call, or a WRITE whose target
//!    names the lock address, here or in a resolved callee. Protocol
//!    helpers whose name declares the contract (`lock`, `acquire`,
//!    `reclaim`) hand the obligation to their caller and are exempt —
//!    but the caller is now on the hook, which the old per-file rule
//!    could not see. Note `reclaim` is obligation-transfer, not release:
//!    the full-word reclaim CAS keeps the lock bit set.
//! 2. **backoff** ([`check_loops`], per-file) — a retry loop that issues
//!    masked-CAS verbs must invoke the seeded backoff inside the loop;
//!    bare spinning turns one conflict into a convoy and (worse) makes
//!    retry timing depend on host scheduling.

use crate::callgraph::CallGraph;
use crate::dataflow::Dataflow;
use crate::report::Finding;
use crate::source::SourceFile;
use crate::workspace::Workspace;

use super::masked_cas_calls;

/// Clause 1: acquire implies release, judged on the call-graph-closed
/// dataflow summaries.
pub fn check_release(ws: &Workspace, _cg: &CallGraph, dfa: &Dataflow, out: &mut Vec<Finding>) {
    for gid in 0..ws.fns.len() {
        let (file, f) = ws.fn_at(gid);
        if f.body.1 <= f.body.0 || !file.is_production(f.toks.0) {
            continue;
        }
        let s = &dfa.summaries[gid];
        if s.helper {
            continue; // ownership transfer by name; callers are on the hook
        }
        if s.obligation && !s.releases {
            out.push(Finding {
                rule: "lock-discipline",
                file: file.rel_path.clone(),
                line: f.line,
                message: format!(
                    "`{}` acquires the lock word with a masked-CAS (directly or via a locking helper) but never releases it on any path in its call graph; every exit path must unlock",
                    f.name
                ),
            });
        }
    }
}

/// Clause 2: masked-CAS retry loops must invoke the seeded backoff.
/// Only the innermost loop containing each call is held responsible.
pub fn check_loops(file: &SourceFile, out: &mut Vec<Finding>) {
    let toks = &file.toks;
    let mut flagged: Vec<u32> = Vec::new();
    for c in masked_cas_calls(toks, (0, toks.len())) {
        if !file.is_production(c.idx) {
            continue;
        }
        let innermost = file
            .loops
            .iter()
            .filter(|l| l.toks.0 <= c.idx && c.idx < l.toks.1)
            .min_by_key(|l| l.toks.1 - l.toks.0);
        let Some(lp) = innermost else { continue };
        let has_backoff =
            (lp.toks.0..lp.toks.1).any(|i| toks[i].text.to_ascii_lowercase().contains("backoff"));
        if !has_backoff && !flagged.contains(&lp.line) {
            flagged.push(lp.line);
            out.push(Finding {
                rule: "lock-discipline",
                file: file.rel_path.clone(),
                line: lp.line,
                message: "retry loop issues a masked-CAS without invoking the seeded backoff; bare spinning convoys under contention".to_string(),
            });
        }
    }
}
