//! R4 `unsafe-comment` — every `unsafe` block, impl or fn carries an
//! adjacent justification.
//!
//! `dmem::region` is the only crate allowed to contain `unsafe` at all
//! (the rest carry `#![forbid(unsafe_code)]`), and there every use must
//! state *why* it is sound: a `// SAFETY:` comment (or a `# Safety` doc
//! section for unsafe fns) within the few lines above the keyword.

use crate::report::Finding;
use crate::source::SourceFile;

/// How many lines above the `unsafe` keyword the justification may end.
const ADJACENCY_LINES: u32 = 6;

/// Runs the rule.
pub fn check(file: &SourceFile, out: &mut Vec<Finding>) {
    let toks = &file.toks;
    for i in 0..toks.len() {
        if !toks[i].is_ident("unsafe") || !file.is_production(i) {
            continue;
        }
        let what = match toks.get(i + 1) {
            Some(t) if t.is_ident("impl") => "unsafe impl",
            Some(t) if t.is_ident("fn") => "unsafe fn",
            Some(t) if t.is_ident("trait") => "unsafe trait",
            _ => "unsafe block",
        };
        if !file.has_safety_comment_near(toks[i].line, ADJACENCY_LINES) {
            out.push(Finding {
                rule: "unsafe-comment",
                file: file.rel_path.clone(),
                line: toks[i].line,
                message: format!(
                    "{what} without an adjacent `// SAFETY:` comment; state the invariant that makes it sound"
                ),
            });
        }
    }
}
