//! R10 `trace-context` — operation spans close on every exit path
//! (anywhere in the call graph) and trace ids are minted only at
//! operation entry.
//!
//! `Endpoint::span_begin` (and the tracer-level `begin_span`) opens an
//! operation span that must reach the matching `span_end`/`end_span` on
//! all control paths; a span leaked by an early `return` or `?` leaves
//! the endpoint's span depth permanently off, so the always-on telemetry
//! never records the op and every later nesting decision is wrong. Spans
//! are counted effectively through the call graph: an open-only helper
//! counts as an open at each call site, a closer discharges it. And a
//! `set_trace_id` between a span's open and close re-mints the causal id
//! mid-operation, splitting one op's verbs across two trace ids — ids
//! are minted once, at the serve/bench entry point, before the span
//! opens.

use crate::callgraph::CallGraph;
use crate::dataflow::{balance_of, Counted, Dataflow};
use crate::report::Finding;
use crate::workspace::Workspace;

use super::balance::{self, PairSpec};
use super::is_call;

/// Name fragments marking span/trace plumbing (the verbs themselves,
/// `set_trace_id`, tracer internals) — exempt delegation wrappers.
const WRAPPER_FRAGMENTS: &[&str] = &["span", "trace"];

/// The rule's configuration for the shared balanced-pair engine.
const SPEC: PairSpec = PairSpec {
    rule: "trace-context",
    kind: Counted::Span as usize,
    wrapper_fragments: WRAPPER_FRAGMENTS,
    unbalanced_msg: |name, opens, closes| {
        format!(
            "`{name}` opens {opens} op span(s) but closes {closes}; every `span_begin` must reach `span_end` on all exit paths",
        )
    },
    escape_msg: |name, tok, line| {
        format!(
            "`{name}` has `{tok}` between `span_begin` and `span_end` (line {line}); an early exit leaks the open span",
        )
    },
};

/// Runs the rule over the workspace.
pub fn check(ws: &Workspace, cg: &CallGraph, dfa: &Dataflow, out: &mut Vec<Finding>) {
    balance::run(ws, cg, dfa, out, &SPEC);

    // Second clause: no trace-id mint inside a balanced open interval.
    for gid in 0..ws.fns.len() {
        let (file, f) = ws.fn_at(gid);
        if f.body.1 <= f.body.0 || !file.is_production(f.toks.0) {
            continue;
        }
        if WRAPPER_FRAGMENTS.iter().any(|w| f.name.contains(w)) {
            continue;
        }
        let b = balance_of(ws, cg, dfa, gid, Counted::Span as usize);
        if b.opens == 0 || b.opens != b.closes {
            continue; // unbalanced already fired above
        }
        let (Some(first), Some(last)) = (b.first_open, b.last_close) else {
            continue;
        };
        for i in first..last {
            if is_call(&file.toks, i, "set_trace_id") || is_call(&file.toks, i, "set_trace") {
                out.push(Finding {
                    rule: "trace-context",
                    file: file.rel_path.clone(),
                    line: f.line,
                    message: format!(
                        "`{}` mints a fresh trace id inside an open span (line {}); trace ids are minted once at the operation entry, before the span opens",
                        f.name,
                        file.toks[i].line
                    ),
                });
                break;
            }
        }
    }
}
