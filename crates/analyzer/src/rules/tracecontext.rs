//! R10 `trace-context` — operation spans close on every exit path and
//! trace ids are minted only at operation entry.
//!
//! `Endpoint::span_begin` (and the tracer-level `begin_span`) opens an
//! operation span that must reach the matching `span_end`/`end_span` on
//! all control paths; a span leaked by an early `return` or `?` leaves
//! the endpoint's span depth permanently off, so the always-on telemetry
//! never records the op and every later nesting decision is wrong. And a
//! `set_trace_id` between a span's open and close re-mints the causal id
//! mid-operation, splitting one op's verbs across two trace ids — ids
//! are minted once, at the serve/bench entry point, before the span
//! opens.

use crate::report::Finding;
use crate::source::SourceFile;

use super::is_call;

/// Delegation wrappers that legitimately call only one side of the pair
/// (or forward the mint itself).
const EXEMPT_FNS: &[&str] = &[
    "span_begin",
    "span_end",
    "begin_span",
    "end_span",
    "set_trace_id",
    "set_trace",
];

/// Span-opening calls (endpoint- and tracer-level).
const BEGINS: &[&str] = &["span_begin", "begin_span"];
/// Span-closing calls.
const ENDS: &[&str] = &["span_end", "end_span"];

/// Runs the rule.
pub fn check(file: &SourceFile, out: &mut Vec<Finding>) {
    let toks = &file.toks;
    for f in &file.fns {
        if f.body.1 <= f.body.0 || !file.is_production(f.toks.0) {
            continue;
        }
        if EXEMPT_FNS.contains(&f.name.as_str()) {
            continue;
        }
        let begins: Vec<usize> = (f.body.0..f.body.1)
            .filter(|&i| BEGINS.iter().any(|n| is_call(toks, i, n)))
            .collect();
        let ends: Vec<usize> = (f.body.0..f.body.1)
            .filter(|&i| ENDS.iter().any(|n| is_call(toks, i, n)))
            .collect();
        if begins.is_empty() && ends.is_empty() {
            continue;
        }
        if begins.len() != ends.len() {
            out.push(Finding {
                rule: "trace-context",
                file: file.rel_path.clone(),
                line: f.line,
                message: format!(
                    "`{}` opens {} op span(s) but closes {}; every `span_begin` must reach `span_end` on all exit paths",
                    f.name,
                    begins.len(),
                    ends.len()
                ),
            });
            continue;
        }
        // Balanced counts: police the open interval for escape hatches
        // and mid-operation trace-id mints.
        let (first, last) = (begins[0], *ends.last().unwrap());
        for t in toks.iter().take(last).skip(first) {
            if t.is_ident("return") || t.is_punct('?') {
                out.push(Finding {
                    rule: "trace-context",
                    file: file.rel_path.clone(),
                    line: f.line,
                    message: format!(
                        "`{}` has `{}` between `span_begin` and `span_end` (line {}); an early exit leaks the open span",
                        f.name,
                        t.text,
                        t.line
                    ),
                });
                break;
            }
        }
        for i in first..last {
            if is_call(toks, i, "set_trace_id") || is_call(toks, i, "set_trace") {
                out.push(Finding {
                    rule: "trace-context",
                    file: file.rel_path.clone(),
                    line: f.line,
                    message: format!(
                        "`{}` mints a fresh trace id inside an open span (line {}); trace ids are minted once at the operation entry, before the span opens",
                        f.name,
                        toks[i].line
                    ),
                });
                break;
            }
        }
    }
}
