//! R5 `lockword-layout` — the packed lock-word bit fields must be
//! disjoint, in-range, and in their documented positions.
//!
//! CHIME packs four fields into the node's 8-byte lock word (Fig. 8–9):
//! the lock bit (bit 0), `argmax_keys` (bits 1..=10), the 45-bit vacancy
//! bitmap (bits 11..=55) and the lease epoch (bits 56..=63). The whole
//! synchronization protocol — masked-CAS acquisition with `cmask = 0x1`,
//! vacancy piggybacking in the returned old value, full-word reclaim CAS
//! — silently corrupts neighbours if any `*_SHIFT`/`*_MASK` constant
//! drifts. This rule parses the constants out of `lockword.rs` and
//! re-derives the layout.

use std::collections::BTreeMap;

use crate::lexer::{int_value, TokKind};
use crate::report::Finding;
use crate::source::SourceFile;

/// The constants the layout is derived from.
const REQUIRED: &[&str] = &[
    "LOCK_BIT",
    "ARGMAX_SHIFT",
    "ARGMAX_MASK",
    "VACANCY_SHIFT",
    "VACANCY_BITS",
    "EPOCH_SHIFT",
    "EPOCH_MASK",
];

/// One derived bit field.
struct Field {
    name: &'static str,
    /// Field mask within the 64-bit word.
    mask: u64,
    /// Line of the constant the field is anchored to (for findings).
    line: u32,
    /// The documented mask this field must equal.
    expected: u64,
}

/// Runs the rule (applies only to files named `lockword.rs`).
pub fn check(file: &SourceFile, out: &mut Vec<Finding>) {
    if file
        .rel_path
        .rsplit('/')
        .next()
        .is_none_or(|f| f != "lockword.rs")
    {
        return;
    }
    let consts = parse_consts(file);
    let mut missing = false;
    for name in REQUIRED {
        if !consts.contains_key(*name) {
            missing = true;
            out.push(Finding {
                rule: "lockword-layout",
                file: file.rel_path.clone(),
                line: 1,
                message: format!(
                    "lock-word constant `{name}` not found; the layout cannot be verified"
                ),
            });
        }
    }
    if missing {
        return;
    }
    let get = |n: &str| consts[n];

    // Derive the four field masks. `checked_shl`/multiply guards catch
    // fields pushed past bit 63.
    let mut fields: Vec<Field> = Vec::new();
    let mut push_field = |name: &'static str,
                          mask: u64,
                          shift: u64,
                          anchor: (u64, u32),
                          expected: u64,
                          out: &mut Vec<Finding>| {
        if shift >= 64 || (mask != 0 && mask.leading_zeros() < shift as u32) {
            out.push(Finding {
                rule: "lockword-layout",
                file: file.rel_path.clone(),
                line: anchor.1,
                message: format!(
                    "`{name}` field (mask {mask:#x} << {shift}) does not fit in the 64-bit lock word"
                ),
            });
        } else {
            fields.push(Field {
                name,
                mask: mask << shift,
                line: anchor.1,
                expected,
            });
        }
    };

    push_field("lock", get("LOCK_BIT").0, 0, get("LOCK_BIT"), 0x1, out);
    push_field(
        "argmax",
        get("ARGMAX_MASK").0,
        get("ARGMAX_SHIFT").0,
        get("ARGMAX_SHIFT"),
        0x3FF << 1,
        out,
    );
    let vac_bits = get("VACANCY_BITS").0;
    let vac_mask = if vac_bits >= 64 {
        u64::MAX
    } else {
        (1u64 << vac_bits) - 1
    };
    push_field(
        "vacancy",
        vac_mask,
        get("VACANCY_SHIFT").0,
        get("VACANCY_SHIFT"),
        ((1u64 << 45) - 1) << 11,
        out,
    );
    push_field(
        "epoch",
        get("EPOCH_MASK").0,
        get("EPOCH_SHIFT").0,
        get("EPOCH_SHIFT"),
        0xFFu64 << 56,
        out,
    );

    // Pairwise disjointness, anchored at the later field's constant.
    for a in 0..fields.len() {
        for b in a + 1..fields.len() {
            let overlap = fields[a].mask & fields[b].mask;
            if overlap != 0 {
                out.push(Finding {
                    rule: "lockword-layout",
                    file: file.rel_path.clone(),
                    line: fields[b].line,
                    message: format!(
                        "lock-word fields `{}` and `{}` overlap on bits {:#x}; packed fields must be disjoint",
                        fields[a].name, fields[b].name, overlap
                    ),
                });
            }
        }
    }

    // Documented positions (Fig. 8–9: bit 0 / 1..=10 / 11..=55 / 56..=63).
    for f in &fields {
        if f.mask != f.expected {
            out.push(Finding {
                rule: "lockword-layout",
                file: file.rel_path.clone(),
                line: f.line,
                message: format!(
                    "`{}` field occupies {} but the documented layout is {}",
                    f.name,
                    bit_range(f.mask),
                    bit_range(f.expected)
                ),
            });
        }
    }
}

/// Human description of a mask's bit positions.
fn bit_range(mask: u64) -> String {
    if mask == 0 {
        return "no bits".to_string();
    }
    let lo = mask.trailing_zeros();
    let hi = 63 - mask.leading_zeros();
    // Note a non-contiguous mask explicitly.
    let contiguous = mask == ((1u128 << (hi + 1)) - (1u128 << lo)) as u64;
    if contiguous {
        if lo == hi {
            format!("bit {lo}")
        } else {
            format!("bits {lo}..={hi}")
        }
    } else {
        format!("non-contiguous bits within {lo}..={hi} (mask {mask:#x})")
    }
}

/// Parses `const NAME: <ty> = <int literal>;` items, returning
/// `name -> (value, line)`. Shared with the `mask-consistency` rule,
/// which derives its allowed-mask set from the same constants.
pub(crate) fn parse_consts(file: &SourceFile) -> BTreeMap<String, (u64, u32)> {
    let toks = &file.toks;
    let mut out = BTreeMap::new();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].is_ident("const") && toks.get(i + 1).is_some_and(|t| t.kind == TokKind::Ident) {
            let name = toks[i + 1].text.clone();
            let line = toks[i + 1].line;
            // Find `=` then the value tokens up to `;`.
            let mut j = i + 2;
            while j < toks.len() && !toks[j].is_punct('=') && !toks[j].is_punct(';') {
                j += 1;
            }
            if toks.get(j).is_some_and(|t| t.is_punct('=')) {
                let mut vals = Vec::new();
                let mut k = j + 1;
                while k < toks.len() && !toks[k].is_punct(';') {
                    vals.push(k);
                    k += 1;
                }
                // Only single-literal constants participate; derived
                // constants (e.g. the const assertions) are ignored.
                if vals.len() == 1 && toks[vals[0]].kind == TokKind::Num {
                    if let Some(v) = int_value(&toks[vals[0]].text) {
                        out.insert(name, (v, line));
                    }
                }
                i = k;
                continue;
            }
        }
        i += 1;
    }
    out
}
