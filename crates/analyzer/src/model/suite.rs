//! The `chime-model` check suite: which models run, what each must
//! prove, and the deterministic text/JSON rendering.
//!
//! A suite run *passes* only when every expectation is met — the sound
//! models must verify all their properties **and** the probe models must
//! be refuted on the property their seeded bug breaks. A probe that
//! fails to find its violation means the checker has gone blind, and the
//! run fails exactly as hard as a sound-model violation.

use obs::json::Json;

use super::lease::{LeaseModel, WordLayout};
use super::migrate::MigrateModel;
use super::{explore, Exploration, Model, Violation};

/// What one model run must show.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Expect {
    /// All properties hold.
    Verify,
    /// The named property is violated (seeded-bug probe).
    Refute(&'static str),
}

/// One explored model plus its verdict.
pub struct ModelRun {
    /// Model name.
    pub name: &'static str,
    /// Mode tag (`sound` / `probe:*`).
    pub mode: &'static str,
    /// Actor count.
    pub actors: usize,
    /// Declared properties.
    pub properties: &'static [&'static str],
    /// The expectation for this run.
    pub expect: Expect,
    /// Exploration statistics and first violation.
    pub result: Exploration,
}

impl ModelRun {
    /// Whether the run met its expectation.
    pub fn pass(&self) -> bool {
        match (self.expect, &self.result.violation) {
            (Expect::Verify, None) => true,
            (Expect::Refute(p), Some(v)) => v.property == p,
            _ => false,
        }
    }
}

/// The whole suite's outcome.
pub struct SuiteResult {
    /// All model runs, in suite order.
    pub runs: Vec<ModelRun>,
    /// Where the lock-word layout came from (report provenance).
    pub layout_origin: String,
}

impl SuiteResult {
    /// Whether every expectation was met.
    pub fn pass(&self) -> bool {
        self.runs.iter().all(|r| r.pass())
    }

    /// Renders the human-readable summary.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for r in &self.runs {
            let cut = if r.result.transitions > 0 {
                format!(
                    "{}/{} reduced",
                    r.result.reduced_states, r.result.reduced_transitions
                )
            } else {
                "-".to_string()
            };
            let verdict = match (&r.result.violation, r.pass()) {
                (None, true) => format!("verified {}", r.properties.join(", ")),
                (Some(v), true) => format!(
                    "refuted {} as expected ({})",
                    v.property,
                    v.trace.join(" → ")
                ),
                (None, false) => {
                    let Expect::Refute(p) = r.expect else {
                        unreachable!("verify+no-violation is a pass")
                    };
                    format!("FAILED: probe did not refute {p}")
                }
                (Some(v), false) => format!("FAILED: {} violated: {}", v.property, v.message),
            };
            out.push_str(&format!(
                "chime-model: {} [{}] {} states, {} transitions ({}): {}\n",
                r.name, r.mode, r.result.states, r.result.transitions, cut, verdict
            ));
        }
        let met = self.runs.iter().filter(|r| r.pass()).count();
        out.push_str(&format!(
            "chime-model: {} ({met}/{} expectations met, layout: {})\n",
            if self.pass() { "PASS" } else { "FAIL" },
            self.runs.len(),
            self.layout_origin
        ));
        out
    }

    /// Renders the machine-readable report (byte-identical across runs).
    pub fn to_json(&self) -> String {
        let runs: Vec<Json> = self
            .runs
            .iter()
            .map(|r| {
                let violated = r.result.violation.as_ref().map(|v| v.property);
                let props: Vec<Json> = r
                    .properties
                    .iter()
                    .map(|&p| {
                        Json::obj(vec![
                            ("name", Json::from(p)),
                            ("holds", Json::Bool(violated != Some(p))),
                        ])
                    })
                    .collect();
                let violation = match &r.result.violation {
                    None => Json::Null,
                    Some(Violation {
                        property,
                        message,
                        trace,
                    }) => Json::obj(vec![
                        ("property", Json::from(*property)),
                        ("message", Json::from(message.as_str())),
                        (
                            "trace",
                            Json::Arr(trace.iter().map(|t| Json::from(t.as_str())).collect()),
                        ),
                    ]),
                };
                Json::obj(vec![
                    ("name", Json::from(r.name)),
                    ("mode", Json::from(r.mode)),
                    ("actors", Json::from(r.actors as u64)),
                    (
                        "expectation",
                        Json::Str(match r.expect {
                            Expect::Verify => "verify".to_string(),
                            Expect::Refute(p) => format!("refute:{p}"),
                        }),
                    ),
                    ("pass", Json::Bool(r.pass())),
                    ("states", Json::from(r.result.states as u64)),
                    ("transitions", Json::from(r.result.transitions as u64)),
                    ("reduced_states", Json::from(r.result.reduced_states as u64)),
                    (
                        "reduced_transitions",
                        Json::from(r.result.reduced_transitions as u64),
                    ),
                    ("properties", Json::Arr(props)),
                    ("violation", violation),
                ])
            })
            .collect();
        Json::obj(vec![
            ("tool", Json::from("chime-model")),
            ("schema", Json::from(1u64)),
            ("layout", Json::from(self.layout_origin.as_str())),
            ("pass", Json::Bool(self.pass())),
            ("models", Json::Arr(runs)),
        ])
        .to_pretty()
    }
}

fn run_one(m: &dyn Model, expect: Expect) -> ModelRun {
    ModelRun {
        name: m.name(),
        mode: m.mode(),
        actors: m.actors(),
        properties: m.properties(),
        expect,
        result: explore(m),
    }
}

/// Runs the full suite against the given lock-word layout.
pub fn run(layout: WordLayout, layout_origin: &str) -> SuiteResult {
    let lease = |zombie| LeaseModel {
        layout,
        clients: 3,
        zombie,
    };
    SuiteResult {
        runs: vec![
            run_one(&lease(false), Expect::Verify),
            run_one(&lease(true), Expect::Refute("lease-safety")),
            run_one(&MigrateModel { publish_flip: false }, Expect::Verify),
            run_one(
                &MigrateModel { publish_flip: true },
                Expect::Refute("routing-integrity"),
            ),
        ],
        layout_origin: layout_origin.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_passes_on_the_documented_layout() {
        let s = run(WordLayout::documented(), "documented");
        assert!(s.pass(), "{}", s.to_text());
        assert_eq!(s.runs.len(), 4);
        // Two sound verifications, two expected refutations.
        assert_eq!(s.runs.iter().filter(|r| r.result.violation.is_some()).count(), 2);
    }

    #[test]
    fn json_is_byte_identical_across_runs() {
        let a = run(WordLayout::documented(), "documented").to_json();
        let b = run(WordLayout::documented(), "documented").to_json();
        assert_eq!(a, b);
        assert!(a.contains("\"tool\": \"chime-model\""));
        assert!(a.contains("\"pass\": true"));
    }
}
