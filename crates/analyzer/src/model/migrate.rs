//! The migration model: `part::migrate`'s crash points against recovery.
//!
//! Mirrors the live-migration state machine of `crates/part/src/migrate.rs`
//! step for step: CAS `part_lock`, journal the intent, move K leaves, CAS
//! the root switch, publish the routing change (journal cleared under the
//! lock), release the lock. The migrator can crash at each of the four
//! named crash points (`part.migrate.locked`, `.copied` — once per moved
//! leaf, `.switched`, `.done`), after which the recovery actor replays
//! `recover()`'s decision tree exactly: unlock when nothing was journaled
//! or the publish already happened, abort when the copy never started,
//! roll forward when it had, finish the publish when the switch was
//! already live. A contender actor attempts the lock CAS while it is held
//! and observes `Busy` — the loser path of the single-migrator guarantee.
//!
//! Safety invariants checked on every reachable state:
//!
//! * **routing-integrity** — the switch never makes a tree with missing
//!   leaves authoritative, and routing is never published before the
//!   switch (a CN routed to the new home must find the new tree live);
//! * **journal-discipline** — the journal is never valid while
//!   `part_lock` is free (a journal without its lock would let a second
//!   migrator run over a half-moved partition).
//!
//! The `probe:publish-flip` mode adds the classic ordering bug: publish
//! the routing change while leaves are still unmoved. The checker must
//! refute routing-integrity on that mode — the "reads through the new
//! root lose keys" state becomes reachable.

use super::{Model, State, Step};

/// Leaves to move; two is the smallest count that distinguishes "copy
/// started" from "copy complete" (the recovery decision boundary).
const K: u64 = 2;

// Shared-word bit layout.
const LOCK: u64 = 1 << 0;
const JOURNAL: u64 = 1 << 1;
const COPIED_SHIFT: u32 = 2; // 2 bits, 0..=K
const SWITCHED: u64 = 1 << 4;
const PUBLISHED: u64 = 1 << 5;
const MIG_PC_SHIFT: u32 = 8; // 3 bits
const CONTENDER_PC_SHIFT: u32 = 12; // 1 bit

// Migrator program counters.
const START: u64 = 0;
const LOCKED: u64 = 1;
const COPYING: u64 = 2;
const SWITCHED_PC: u64 = 3;
const PUBLISHED_PC: u64 = 4;
const DONE: u64 = 5;
const CRASHED: u64 = 6;

fn copied(w: u64) -> u64 {
    (w >> COPIED_SHIFT) & 0b11
}
fn with_copied(w: u64, c: u64) -> u64 {
    (w & !(0b11 << COPIED_SHIFT)) | (c << COPIED_SHIFT)
}
fn mig_pc(w: u64) -> u64 {
    (w >> MIG_PC_SHIFT) & 0b111
}
fn with_mig_pc(w: u64, pc: u64) -> u64 {
    (w & !(0b111 << MIG_PC_SHIFT)) | (pc << MIG_PC_SHIFT)
}
fn contender_done(w: u64) -> bool {
    w & (1 << CONTENDER_PC_SHIFT) != 0
}

/// The migration protocol model.
pub struct MigrateModel {
    /// Probe mode: the migrator may publish before the copy completes.
    pub publish_flip: bool,
}

impl Model for MigrateModel {
    fn name(&self) -> &'static str {
        "part-migrate"
    }
    fn mode(&self) -> &'static str {
        if self.publish_flip {
            "probe:publish-flip"
        } else {
            "sound"
        }
    }
    fn actors(&self) -> usize {
        3
    }
    fn actor_name(&self, actor: usize) -> String {
        ["migrator", "contender", "recovery"][actor].to_string()
    }
    fn init(&self) -> State {
        (0, 0)
    }

    fn steps(&self, (w, _aux): State, actor: usize) -> Vec<Step> {
        let mut out = Vec::new();
        let step = |label, w2| Step { label, next: (w2, 0) };
        match actor {
            // The migrator walks the numbered steps of `migrate()`; each
            // crash point from the source is a `crash-*` action.
            0 => match mig_pc(w) {
                START if w & LOCK == 0 => {
                    out.push(step("lock", with_mig_pc(w | LOCK, LOCKED)));
                }
                LOCKED => {
                    out.push(step("journal", with_mig_pc(w | JOURNAL, COPYING)));
                    out.push(step("crash-locked", with_mig_pc(w, CRASHED)));
                }
                COPYING => {
                    if copied(w) < K {
                        out.push(step("copy-leaf", with_copied(w, copied(w) + 1)));
                        if self.publish_flip {
                            // The ordering bug: routing goes live while
                            // leaves are still on the old tree.
                            out.push(step(
                                "publish-early",
                                with_mig_pc((w | SWITCHED | PUBLISHED) & !JOURNAL, PUBLISHED_PC),
                            ));
                        }
                    } else {
                        out.push(step("switch", with_mig_pc(w | SWITCHED, SWITCHED_PC)));
                    }
                    out.push(step("crash-copied", with_mig_pc(w, CRASHED)));
                }
                SWITCHED_PC => {
                    out.push(step("publish", with_mig_pc((w | PUBLISHED) & !JOURNAL, PUBLISHED_PC)));
                    out.push(step("crash-switched", with_mig_pc(w, CRASHED)));
                }
                PUBLISHED_PC => {
                    out.push(step("unlock", with_mig_pc(w & !LOCK, DONE)));
                    out.push(step("crash-done", with_mig_pc(w, CRASHED)));
                }
                _ => {}
            },
            // The contender attempts the lock CAS while it is held and
            // takes the `MigrateError::Busy` exit.
            1 => {
                if !contender_done(w) && w & LOCK != 0 {
                    out.push(step("lock-busy", w | (1 << CONTENDER_PC_SHIFT)));
                }
            }
            // Recovery replays `recover()`'s decision tree, one atomic
            // action, only once the migrator is dead.
            _ => {
                if mig_pc(w) == CRASHED {
                    let finish = |w2: u64| with_mig_pc(w2 & !LOCK, DONE);
                    if w & SWITCHED != 0 && w & PUBLISHED == 0 {
                        out.push(step("recover-finish", finish((w | PUBLISHED) & !JOURNAL)));
                    } else if w & JOURNAL != 0 && copied(w) > 0 {
                        out.push(step(
                            "recover-roll-forward",
                            finish(with_copied(w | SWITCHED | PUBLISHED, K) & !JOURNAL),
                        ));
                    } else if w & JOURNAL != 0 {
                        out.push(step("recover-abort", finish(w & !JOURNAL)));
                    } else {
                        out.push(step("recover-unlock", finish(w)));
                    }
                }
            }
        }
        out
    }

    fn violation(&self, (w, _aux): State) -> Option<(&'static str, String)> {
        if w & SWITCHED != 0 && copied(w) < K {
            return Some((
                "routing-integrity",
                format!(
                    "root switched with {} of {K} leaves copied — reads through the new root lose keys",
                    copied(w)
                ),
            ));
        }
        if w & PUBLISHED != 0 && w & SWITCHED == 0 {
            return Some((
                "routing-integrity",
                "routing published before the root switch".to_string(),
            ));
        }
        if w & LOCK == 0 && w & JOURNAL != 0 {
            return Some((
                "journal-discipline",
                "migration journal valid while part_lock is free".to_string(),
            ));
        }
        None
    }

    fn is_progress(&self, label: &str) -> bool {
        label == "unlock" || label.starts_with("recover")
    }

    fn may_halt(&self, (w, _aux): State) -> bool {
        mig_pc(w) == DONE
    }

    fn footprint(&self, _actor: usize, label: &str) -> u64 {
        // Bit 0: the shared control words (lock, journal, flags).
        // Bit 1: the migrator's liveness. Bit 2: the contender's pc.
        match label {
            l if l.starts_with("crash") => 0b010,
            "lock-busy" => 0b101,
            l if l.starts_with("recover") => 0b011,
            _ => 0b011,
        }
    }

    fn properties(&self) -> &'static [&'static str] {
        &["routing-integrity", "journal-discipline", "progress", "deadlock-freedom"]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::explore;

    #[test]
    fn sound_migration_verifies() {
        let e = explore(&MigrateModel { publish_flip: false });
        assert!(e.violation.is_none(), "sound model must verify: {:?}", e.violation);
        assert!(e.states > 20, "expected all crash/recovery paths, got {}", e.states);
    }

    #[test]
    fn sleep_sets_cut_the_contender_interleavings() {
        // The migrator's crash steps touch only its own liveness and the
        // contender's busy-CAS touches only the lock + its own pc, so
        // their two orders commute and one is pruned.
        let e = explore(&MigrateModel { publish_flip: false });
        assert!(
            e.reduced_transitions < e.transitions,
            "expected a DPOR cut from the contender: {e:?}"
        );
    }

    #[test]
    fn publish_flip_probe_loses_keys() {
        let e = explore(&MigrateModel { publish_flip: true });
        let v = e.violation.expect("the probe must refute routing-integrity");
        assert_eq!(v.property, "routing-integrity");
        assert!(
            v.trace.iter().any(|s| s.contains("publish-early")),
            "witness must pass through the reordered publish: {:?}",
            v.trace
        );
    }

    #[test]
    fn every_crash_point_recovers() {
        // All four crash labels and all four recovery outcomes must be
        // reachable (the progress check in `explore` separately proves
        // every crashed state leads back to DONE).
        let m = MigrateModel { publish_flip: false };
        let mut seen = std::collections::BTreeSet::new();
        let mut stack = vec![m.init()];
        let mut labels = std::collections::BTreeSet::new();
        while let Some(s) = stack.pop() {
            if !seen.insert(s) {
                continue;
            }
            for actor in 0..m.actors() {
                for st in m.steps(s, actor) {
                    labels.insert(st.label);
                    stack.push(st.next);
                }
            }
        }
        for l in ["crash-locked", "crash-copied", "crash-switched", "crash-done"] {
            assert!(labels.contains(l), "crash point {l} unreachable");
        }
        for l in ["recover-unlock", "recover-abort", "recover-roll-forward", "recover-finish"] {
            assert!(labels.contains(l), "recovery outcome {l} unreachable");
        }
    }
}
