//! The lock-lease model: 3 abstract clients racing one CHIME lock word.
//!
//! The shared state *is* a lock word packed with the repo's own layout —
//! the bit positions come from `crates/core/src/lockword.rs` (parsed by
//! the same constant extractor the `lockword-layout` rule uses), so if
//! the layout moves, the model moves with it. The lock bit and the lease
//! epoch are exactly the protocol's fields; the argmax field's bits are
//! borrowed to carry the abstract owner id, which the real protocol
//! keeps implicit (the model needs it to *check* mutual exclusion, the
//! protocol only needs it to hold).
//!
//! Transitions per client: the masked-CAS **acquire** (lock bit 0→1,
//! owner stamped), the plain-write **release** (lock and owner cleared),
//! **lease-expire** (the holder dies holding the lock — after this the
//! sound model never lets it act again; that is the lease assumption),
//! and **reclaim** (full-word CAS by another client once the holder is
//! dead: lock stays set, owner re-stamped, epoch bumped — Fig. 8's
//! recovery path). A failed CAS leaves the state unchanged and is
//! therefore not a distinct transition.
//!
//! The `probe:zombie-release` mode deliberately breaks the lease
//! assumption: a dead holder may resurrect and perform its release
//! write. The checker must then find the lease-safety violation (the
//! zombie clears a word that a reclaimer now owns) — proving the
//! properties are checked, not assumed.

use super::{Model, State, Step};
use crate::rules::layout::parse_consts;
use crate::source::SourceFile;

/// Lock-word field positions, extracted from `lockword.rs`.
#[derive(Debug, Clone, Copy)]
pub struct WordLayout {
    /// The lock bit's mask (bit 0 in the documented layout).
    pub lock_bit: u64,
    /// Shift of the owner-carrying field (the argmax field).
    pub owner_shift: u32,
    /// Unshifted mask of the owner field.
    pub owner_mask: u64,
    /// Shift of the lease-epoch field.
    pub epoch_shift: u32,
    /// Unshifted mask of the epoch field.
    pub epoch_mask: u64,
}

impl WordLayout {
    /// The documented layout (Fig. 8–9): lock bit 0, argmax 1..=10,
    /// epoch 56..=63.
    pub fn documented() -> WordLayout {
        WordLayout {
            lock_bit: 0x1,
            owner_shift: 1,
            owner_mask: 0x3FF,
            epoch_shift: 56,
            epoch_mask: 0xFF,
        }
    }

    /// Extracts the layout from a `lockword.rs` source file; `None` when
    /// a required constant is missing or out of range.
    pub fn from_source(file: &SourceFile) -> Option<WordLayout> {
        let c = parse_consts(file);
        let get = |n: &str| c.get(n).map(|&(v, _)| v);
        let layout = WordLayout {
            lock_bit: get("LOCK_BIT")?,
            owner_shift: u32::try_from(get("ARGMAX_SHIFT")?).ok()?,
            owner_mask: get("ARGMAX_MASK")?,
            epoch_shift: u32::try_from(get("EPOCH_SHIFT")?).ok()?,
            epoch_mask: get("EPOCH_MASK")?,
        };
        (layout.owner_shift < 64 && layout.epoch_shift < 64 && layout.owner_mask >= 0b11
            && layout.epoch_mask >= 0b11)
            .then_some(layout)
    }
}

/// Client program counters.
const IDLE: u64 = 0;
const CRITICAL: u64 = 1;
const CRASHED: u64 = 2;

/// The lease epoch is explored modulo this bound (the protocol only ever
/// compares epochs for equality in the reclaim CAS, so a small ring is
/// behavior-preserving and keeps the state space finite).
const EPOCH_BOUND: u64 = 4;

/// Control-word layout of the auxiliary state: 2 bits of pc per client,
/// then the violation record (flag, violator id, owner id at the time).
const VIOLATED_BIT: u64 = 1 << 32;
const VIOLATOR_SHIFT: u32 = 33;
const OWNER_AT_SHIFT: u32 = 37;

/// The lock-lease protocol model.
pub struct LeaseModel {
    /// Field positions (from `lockword.rs` or [`WordLayout::documented`]).
    pub layout: WordLayout,
    /// Number of clients (2 or 3).
    pub clients: usize,
    /// Probe mode: dead holders may resurrect and release.
    pub zombie: bool,
}

impl LeaseModel {
    fn locked(&self, w: u64) -> bool {
        w & self.layout.lock_bit != 0
    }
    fn owner(&self, w: u64) -> u64 {
        (w >> self.layout.owner_shift) & self.layout.owner_mask
    }
    fn epoch(&self, w: u64) -> u64 {
        (w >> self.layout.epoch_shift) & self.layout.epoch_mask
    }
    /// Word with lock set, owner stamped, epoch as given.
    fn packed(&self, owner: u64, epoch: u64) -> u64 {
        self.layout.lock_bit
            | ((owner & self.layout.owner_mask) << self.layout.owner_shift)
            | ((epoch & self.layout.epoch_mask) << self.layout.epoch_shift)
    }
    /// Word with lock and owner cleared (the release write).
    fn released(&self, w: u64) -> u64 {
        w & !(self.layout.lock_bit | (self.layout.owner_mask << self.layout.owner_shift))
    }

    fn pc(aux: u64, i: usize) -> u64 {
        (aux >> (2 * i)) & 0b11
    }
    fn with_pc(aux: u64, i: usize, pc: u64) -> u64 {
        (aux & !(0b11 << (2 * i))) | (pc << (2 * i))
    }
}

impl Model for LeaseModel {
    fn name(&self) -> &'static str {
        "lock-lease"
    }
    fn mode(&self) -> &'static str {
        if self.zombie {
            "probe:zombie-release"
        } else {
            "sound"
        }
    }
    fn actors(&self) -> usize {
        self.clients
    }
    fn actor_name(&self, actor: usize) -> String {
        format!("c{}", actor + 1)
    }
    fn init(&self) -> State {
        (0, 0)
    }

    fn steps(&self, (w, aux): State, i: usize) -> Vec<Step> {
        if aux & VIOLATED_BIT != 0 {
            return Vec::new(); // freeze on violation: the trace is the witness
        }
        let id = (i + 1) as u64;
        let mut out = Vec::new();
        match Self::pc(aux, i) {
            IDLE => {
                if !self.locked(w) {
                    // masked_cas(addr, 0, LOCK_BIT, LOCK_BIT, LOCK_BIT)
                    out.push(Step {
                        label: "acquire",
                        next: (self.packed(id, self.epoch(w)), Self::with_pc(aux, i, CRITICAL)),
                    });
                } else {
                    let j = self.owner(w);
                    if j != 0
                        && (j as usize) <= self.clients
                        && Self::pc(aux, j as usize - 1) == CRASHED
                    {
                        // Lease expired: full-word reclaim CAS — lock bit
                        // stays set, owner re-stamped, epoch bumped.
                        let e = (self.epoch(w) + 1) % EPOCH_BOUND;
                        out.push(Step {
                            label: "reclaim",
                            next: (self.packed(id, e), Self::with_pc(aux, i, CRITICAL)),
                        });
                    }
                }
            }
            CRITICAL => {
                out.push(Step {
                    label: "release",
                    next: (self.released(w), Self::with_pc(aux, i, IDLE)),
                });
                out.push(Step {
                    label: "lease-expire",
                    next: (w, Self::with_pc(aux, i, CRASHED)),
                });
            }
            _ => {
                // CRASHED. The sound lease model never lets a dead holder
                // act again; the probe resurrects it for one last write.
                if self.zombie && self.locked(w) {
                    let j = self.owner(w);
                    if j == id {
                        // Nobody reclaimed yet: the late release is benign.
                        out.push(Step {
                            label: "zombie-release",
                            next: (self.released(w), aux),
                        });
                    } else {
                        // The word was reclaimed: a stale-owner write.
                        out.push(Step {
                            label: "zombie-release",
                            next: (
                                self.released(w),
                                aux | VIOLATED_BIT
                                    | (id << VIOLATOR_SHIFT)
                                    | (j << OWNER_AT_SHIFT),
                            ),
                        });
                    }
                }
            }
        }
        out
    }

    fn violation(&self, (w, aux): State) -> Option<(&'static str, String)> {
        if aux & VIOLATED_BIT != 0 {
            let v = (aux >> VIOLATOR_SHIFT) & 0xF;
            let o = (aux >> OWNER_AT_SHIFT) & 0xF;
            return Some((
                "lease-safety",
                format!(
                    "crashed client c{v} released a lock word that c{o} had reclaimed (stale-owner write past the lease)"
                ),
            ));
        }
        let critical: Vec<usize> = (0..self.clients)
            .filter(|&i| Self::pc(aux, i) == CRITICAL)
            .collect();
        if critical.len() > 1 {
            return Some((
                "mutual-exclusion",
                format!(
                    "clients c{} and c{} are both inside the critical section",
                    critical[0] + 1,
                    critical[1] + 1
                ),
            ));
        }
        let o = self.owner(w);
        if self.locked(w) != (o != 0) || o as usize > self.clients {
            return Some((
                "lease-safety",
                format!("lock word inconsistent: locked={} owner={o}", self.locked(w)),
            ));
        }
        None
    }

    fn is_progress(&self, label: &str) -> bool {
        label == "acquire" || label == "reclaim"
    }

    fn may_halt(&self, (_w, aux): State) -> bool {
        aux & VIOLATED_BIT != 0 || (0..self.clients).all(|i| Self::pc(aux, i) == CRASHED)
    }

    fn footprint(&self, actor: usize, label: &str) -> u64 {
        const WORD: u64 = 1;
        let own_pc = 1u64 << (1 + actor);
        match label {
            // Only the actor's own liveness changes.
            "lease-expire" => own_pc,
            // Reads the holder's crashed flag as the lease guard.
            "reclaim" => {
                let all_pcs = ((1u64 << self.clients) - 1) << 1;
                WORD | all_pcs
            }
            _ => WORD | own_pc,
        }
    }

    fn properties(&self) -> &'static [&'static str] {
        &["mutual-exclusion", "lease-safety", "progress", "deadlock-freedom"]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::explore;

    fn model(zombie: bool) -> LeaseModel {
        LeaseModel {
            layout: WordLayout::documented(),
            clients: 3,
            zombie,
        }
    }

    #[test]
    fn sound_lease_verifies() {
        let e = explore(&model(false));
        assert!(e.violation.is_none(), "sound model must verify: {:?}", e.violation);
        assert!(e.states > 20, "expected a non-trivial state space, got {}", e.states);
    }

    #[test]
    fn reduction_is_exact_on_the_lease_model() {
        // Mutual exclusion serializes the lease protocol: whenever a
        // client holds the lock, no *other* client has an enabled word
        // action, so no two independent actions are ever co-enabled and
        // the sleep-set pass must cover exactly the full space — a cut
        // here would mean the independence relation is wrong.
        let e = explore(&model(false));
        assert_eq!(e.reduced_states, e.states, "{e:?}");
        assert_eq!(e.reduced_transitions, e.transitions, "{e:?}");
    }

    #[test]
    fn zombie_probe_finds_the_lease_violation() {
        let e = explore(&model(true));
        let v = e.violation.expect("the zombie probe must refute lease-safety");
        assert_eq!(v.property, "lease-safety");
        // The witness must contain a crash, a reclaim and the stale write.
        let joined = v.trace.join(" ");
        assert!(joined.contains("lease-expire"), "trace: {joined}");
        assert!(joined.contains("reclaim"), "trace: {joined}");
        assert!(joined.contains("zombie-release"), "trace: {joined}");
    }

    #[test]
    fn layout_extraction_matches_documented_positions() {
        let src = "pub const LOCK_BIT: u64 = 0x1;\n\
             pub const ARGMAX_SHIFT: u64 = 1;\n\
             pub const ARGMAX_MASK: u64 = 0x3FF;\n\
             pub const VACANCY_SHIFT: u64 = 11;\n\
             pub const VACANCY_BITS: u64 = 45;\n\
             pub const EPOCH_SHIFT: u64 = 56;\n\
             pub const EPOCH_MASK: u64 = 0xFF;";
        let file = SourceFile::new("crates/core/src/lockword.rs".into(), src);
        let l = WordLayout::from_source(&file).expect("layout must parse");
        let d = WordLayout::documented();
        assert_eq!(l.lock_bit, d.lock_bit);
        assert_eq!((l.owner_shift, l.owner_mask), (d.owner_shift, d.owner_mask));
        assert_eq!((l.epoch_shift, l.epoch_mask), (d.epoch_shift, d.epoch_mask));
    }

    #[test]
    fn two_clients_also_verify() {
        let e = explore(&LeaseModel {
            layout: WordLayout::documented(),
            clients: 2,
            zombie: false,
        });
        assert!(e.violation.is_none(), "{:?}", e.violation);
    }
}
