//! `chime-model` — exhaustive interleaving exploration of the lock-lease
//! and migration protocols.
//!
//! A model is a small labelled transition system: 2–3 abstract actors
//! stepping a shared state extracted from the repo's own protocol
//! artifacts (the lock-word layout for the lease model, the journal /
//! crash-point structure of `part::migrate` for the migration model).
//! The engine explores **every** interleaving from the initial state:
//!
//! * a **full BFS pass** checks the safety invariants on each reachable
//!   state, flags deadlocks (stuck states the model does not declare
//!   terminal) and checks *progress* — from every non-terminal state,
//!   some progress-labelled action (an acquire, a reclaim, a recovery)
//!   must still be reachable, which is exactly the absence of
//!   lost-wakeup livelock;
//! * a **sleep-set-reduced DFS pass** (DPOR-style: actions of different
//!   actors with disjoint footprints commute, so one order of each
//!   commuting pair is cut) re-covers the space and reports how much of
//!   it the reduction prunes. Safety truth comes from the full pass; the
//!   reduced pass demonstrates the cut on the same models.
//!
//! Everything is deterministic: states are packed integers in
//! `BTreeSet`s, actions are enumerated in a fixed order, and the JSON
//! report is byte-identical across runs.

pub mod lease;
pub mod migrate;
pub mod suite;

use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// A packed model state: `(shared word, control state)`.
pub type State = (u64, u64);

/// One enabled transition.
pub struct Step {
    /// Action label (stable; used in traces and progress checks).
    pub label: &'static str,
    /// Successor state.
    pub next: State,
}

/// A protocol model the engine can explore.
pub trait Model {
    /// Model name (report key).
    fn name(&self) -> &'static str;
    /// Mode tag (`sound` or `probe:*`) for the report.
    fn mode(&self) -> &'static str;
    /// Number of actors.
    fn actors(&self) -> usize;
    /// Display name of an actor (used in trace labels).
    fn actor_name(&self, actor: usize) -> String;
    /// The initial state.
    fn init(&self) -> State;
    /// Enabled transitions of `actor` in `s`, in a fixed order.
    fn steps(&self, s: State, actor: usize) -> Vec<Step>;
    /// First violated safety property in `s`: `(property, message)`.
    fn violation(&self, s: State) -> Option<(&'static str, String)>;
    /// Whether `label` counts as progress for the liveness check.
    fn is_progress(&self, label: &str) -> bool;
    /// Whether `s` may legitimately have no enabled transitions.
    fn may_halt(&self, s: State) -> bool;
    /// Bitmask of shared variables `label` reads or writes. Actions of
    /// *different* actors are independent iff their footprints are
    /// disjoint; same-actor actions are always dependent.
    fn footprint(&self, actor: usize, label: &str) -> u64;
    /// The safety/liveness properties this model claims, for the report.
    fn properties(&self) -> &'static [&'static str];
}

/// A property violation with its witness trace from the initial state.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The violated property.
    pub property: &'static str,
    /// What went wrong in the witness state.
    pub message: String,
    /// Shortest action sequence from the initial state (BFS order),
    /// `actor.label` per step.
    pub trace: Vec<String>,
}

/// The result of exploring one model.
#[derive(Debug)]
pub struct Exploration {
    /// Reachable states (full pass).
    pub states: usize,
    /// Transitions traversed (full pass).
    pub transitions: usize,
    /// States visited by the sleep-set-reduced pass.
    pub reduced_states: usize,
    /// Transitions traversed by the reduced pass.
    pub reduced_transitions: usize,
    /// First violation found (BFS order), if any.
    pub violation: Option<Violation>,
}

/// Explores `m` exhaustively (full BFS + reduced DFS).
pub fn explore(m: &dyn Model) -> Exploration {
    let full = explore_full(m);
    let (reduced_states, reduced_transitions) = explore_reduced(m);
    Exploration {
        states: full.states,
        transitions: full.transitions,
        reduced_states,
        reduced_transitions,
        violation: full.violation,
    }
}

struct FullPass {
    states: usize,
    transitions: usize,
    violation: Option<Violation>,
}

fn trace_to(
    parent: &BTreeMap<State, (State, String)>,
    init: State,
    mut s: State,
) -> Vec<String> {
    let mut out = Vec::new();
    while s != init {
        let (prev, label) = parent.get(&s).expect("state reached without a parent").clone();
        out.push(label);
        s = prev;
    }
    out.reverse();
    out
}

fn explore_full(m: &dyn Model) -> FullPass {
    let init = m.init();
    let mut visited: BTreeSet<State> = BTreeSet::new();
    let mut parent: BTreeMap<State, (State, String)> = BTreeMap::new();
    let mut queue: VecDeque<State> = VecDeque::new();
    // (src, dst, progress) for the liveness pass.
    let mut edges: Vec<(State, State, bool)> = Vec::new();
    visited.insert(init);
    queue.push_back(init);
    let mut transitions = 0usize;
    let mut violation: Option<Violation> = None;

    while let Some(s) = queue.pop_front() {
        if violation.is_none() {
            if let Some((property, message)) = m.violation(s) {
                violation = Some(Violation {
                    property,
                    message,
                    trace: trace_to(&parent, init, s),
                });
            }
        }
        let mut any = false;
        for actor in 0..m.actors() {
            for st in m.steps(s, actor) {
                any = true;
                transitions += 1;
                edges.push((s, st.next, m.is_progress(st.label)));
                if visited.insert(st.next) {
                    parent.insert(st.next, (s, format!("{}.{}", m.actor_name(actor), st.label)));
                    queue.push_back(st.next);
                }
            }
        }
        if !any && !m.may_halt(s) && violation.is_none() {
            violation = Some(Violation {
                property: "deadlock-freedom",
                message: "reachable state has no enabled action and is not terminal".to_string(),
                trace: trace_to(&parent, init, s),
            });
        }
    }

    // Liveness: every non-terminal state must be backward-reachable from
    // a state with an outgoing progress edge (i.e. progress is always
    // still possible — no lost-wakeup livelock).
    if violation.is_none() {
        let mut can_progress: BTreeSet<State> =
            edges.iter().filter(|e| e.2).map(|e| e.0).collect();
        let mut rev: BTreeMap<State, Vec<State>> = BTreeMap::new();
        for (src, dst, _) in &edges {
            rev.entry(*dst).or_default().push(*src);
        }
        let mut q: VecDeque<State> = can_progress.iter().copied().collect();
        while let Some(s) = q.pop_front() {
            if let Some(preds) = rev.get(&s) {
                for &p in preds {
                    if can_progress.insert(p) {
                        q.push_back(p);
                    }
                }
            }
        }
        for &s in &visited {
            if !m.may_halt(s) && !can_progress.contains(&s) {
                violation = Some(Violation {
                    property: "progress",
                    message: "reachable state from which no progress action is ever possible"
                        .to_string(),
                    trace: trace_to(&parent, init, s),
                });
                break;
            }
        }
    }

    FullPass {
        states: visited.len(),
        transitions,
        violation,
    }
}

/// Sleep-set-reduced DFS. Returns `(states_visited, transitions_taken)`.
///
/// Classic sleep sets: after exploring action `a` from a state, `a` goes
/// to sleep for the remaining siblings; descending through `b`, every
/// sleeping action *independent* of `b` stays asleep in the child (its
/// interleavings are covered by the sibling exploration). Dependent
/// actions wake up.
fn explore_reduced(m: &dyn Model) -> (usize, usize) {
    type ActionId = (usize, &'static str);
    let mut visited: BTreeSet<State> = BTreeSet::new();
    let mut transitions = 0usize;

    // Explicit stack: (state, sleep set) entries pending expansion.
    let mut stack: Vec<(State, BTreeSet<ActionId>)> = vec![(m.init(), BTreeSet::new())];
    while let Some((s, sleep)) = stack.pop() {
        if !visited.insert(s) {
            continue;
        }
        let mut acts: Vec<(usize, Step)> = Vec::new();
        for actor in 0..m.actors() {
            for st in m.steps(s, actor) {
                acts.push((actor, st));
            }
        }
        let mut done: Vec<ActionId> = Vec::new();
        // Push in reverse so the stack pops in forward order (cosmetic —
        // the counts are order-independent, the visit order is not).
        let mut children: Vec<(State, BTreeSet<ActionId>)> = Vec::new();
        for (actor, st) in &acts {
            let id: ActionId = (*actor, st.label);
            if sleep.contains(&id) {
                continue;
            }
            transitions += 1;
            let fp = m.footprint(*actor, st.label);
            let child_sleep: BTreeSet<ActionId> = sleep
                .iter()
                .chain(done.iter())
                .filter(|&&(b_actor, b_label)| {
                    b_actor != *actor && m.footprint(b_actor, b_label) & fp == 0
                })
                .copied()
                .collect();
            children.push((st.next, child_sleep));
            done.push(id);
        }
        while let Some(c) = children.pop() {
            stack.push(c);
        }
    }
    (visited.len(), transitions)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two actors each flip their own bit once — fully independent, so
    /// the reduced pass should cut the diamond's redundant corner.
    struct Diamond;
    impl Model for Diamond {
        fn name(&self) -> &'static str {
            "diamond"
        }
        fn mode(&self) -> &'static str {
            "sound"
        }
        fn actors(&self) -> usize {
            2
        }
        fn actor_name(&self, actor: usize) -> String {
            format!("a{actor}")
        }
        fn init(&self) -> State {
            (0, 0)
        }
        fn steps(&self, s: State, actor: usize) -> Vec<Step> {
            let bit = 1u64 << actor;
            if s.0 & bit == 0 {
                vec![Step {
                    label: "flip",
                    next: (s.0 | bit, 0),
                }]
            } else {
                Vec::new()
            }
        }
        fn violation(&self, _s: State) -> Option<(&'static str, String)> {
            None
        }
        fn is_progress(&self, _label: &str) -> bool {
            true
        }
        fn may_halt(&self, s: State) -> bool {
            s.0 == 0b11
        }
        fn footprint(&self, actor: usize, _label: &str) -> u64 {
            1 << actor
        }
        fn properties(&self) -> &'static [&'static str] {
            &["deadlock-freedom", "progress"]
        }
    }

    #[test]
    fn full_pass_covers_the_diamond() {
        let e = explore(&Diamond);
        assert_eq!(e.states, 4);
        assert_eq!(e.transitions, 4);
        assert!(e.violation.is_none());
    }

    #[test]
    fn sleep_sets_cut_the_commuting_order() {
        let e = explore(&Diamond);
        // One of the two orders of the commuting pair is pruned: the
        // reduced pass takes 3 transitions (0→a, a→ab, 0→b with b→ab
        // asleep), not 4.
        assert!(e.reduced_transitions < e.transitions, "no cut: {e:?}");
    }

    /// A lost-wakeup shape: actor 0 can move to a sink from which the
    /// progress action is never reachable again.
    struct Sink;
    impl Model for Sink {
        fn name(&self) -> &'static str {
            "sink"
        }
        fn mode(&self) -> &'static str {
            "sound"
        }
        fn actors(&self) -> usize {
            1
        }
        fn actor_name(&self, _actor: usize) -> String {
            "a0".to_string()
        }
        fn init(&self) -> State {
            (0, 0)
        }
        fn steps(&self, s: State, _actor: usize) -> Vec<Step> {
            match s.0 {
                0 => vec![
                    Step { label: "work", next: (0, 0) },
                    Step { label: "stall", next: (1, 0) },
                ],
                // The sink spins forever without progress.
                _ => vec![Step { label: "spin", next: (1, 0) }],
            }
        }
        fn violation(&self, _s: State) -> Option<(&'static str, String)> {
            None
        }
        fn is_progress(&self, label: &str) -> bool {
            label == "work"
        }
        fn may_halt(&self, _s: State) -> bool {
            false
        }
        fn footprint(&self, _actor: usize, _label: &str) -> u64 {
            1
        }
        fn properties(&self) -> &'static [&'static str] {
            &["progress"]
        }
    }

    #[test]
    fn livelock_is_detected() {
        let e = explore(&Sink);
        let v = e.violation.expect("sink must fail the progress check");
        assert_eq!(v.property, "progress");
        assert_eq!(v.trace, vec!["a0.stall".to_string()]);
    }
}
