//! The forward dataflow framework: per-function summaries of abstract
//! resources, propagated over the call graph to a bounded fixpoint.
//!
//! # Resource kinds
//!
//! Five abstract resources flow through CHIME's functions:
//!
//! * **lock tickets** — the leaf lock word, acquired by the masked-CAS
//!   acquire verb and discharged by an unlock-family call or a WRITE that
//!   targets the lock address;
//! * **admission permits** — `try_admit`/`release` pairs on the serving
//!   front end's connection semaphore;
//! * **WQE tickets** — `post_wqe`/`poll_wqe` pairs on the queue pair;
//! * **phase frames** — `phase_begin`/`phase_end` pairs on the endpoint;
//! * **open spans** — `span_begin`/`span_end` (and the tracer-level
//!   `begin_span`/`end_span`) pairs.
//!
//! The counted kinds (permits, WQEs, phases, spans) get a *net effect*
//! per function: direct opens minus direct closes, plus the net effect of
//! every resolved callee. A wrapper that opens a frame for its caller has
//! net `+1`; a closer has net `-1`; a balanced helper contributes `0` and
//! disappears from its caller's obligation — this is what lets
//! acquire-here/close-in-callee code lint clean while a leak anywhere in
//! the call graph still surfaces. Nets are iterated to a bounded fixpoint
//! (recursion clamps instead of diverging) and ambiguous resolutions
//! (several same-named definitions with different nets) contribute zero,
//! keeping the imprecision conservative-quiet rather than noisy.
//!
//! Lock tickets are boolean, not counted: `direct_acq` (the function
//! itself issues an acquire-shape masked-CAS), `releases` (release
//! evidence here or in any callee), and `obligation` (an unreleased
//! acquire that a *helper-named* function hands to its caller — helpers
//! named `lock`/`acquire`/`reclaim` declare ownership transfer by name,
//! exactly as the per-file rule assumed; non-helpers must discharge their
//! own acquires). Because `releases` appears negated in the obligation
//! recurrence, it is closed first (it is monotone on its own), then
//! obligations are computed against the fixed release set.
//!
//! For the lock-order rule, every function also gets the set of lock
//! *classes* (local slot, partition lock, leaf lock) it leaks to its
//! caller: acquired transitively and not released internally.

use crate::callgraph::{CallGraph, CallSite};
use crate::lexer::TokKind;
use crate::rules::masked_cas_calls;
use crate::source::call_args;
use crate::workspace::Workspace;

/// Counted resource kinds (index into the summary arrays).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Counted {
    /// Phase frames (`phase_begin`/`phase_end`).
    Phase = 0,
    /// WQE tickets (`post_wqe`/`poll_wqe`).
    Wqe = 1,
    /// Operation spans (`span_begin`/`begin_span` / `span_end`/`end_span`).
    Span = 2,
    /// Admission permits (`try_admit`/`release`).
    Permit = 3,
}

/// Number of counted resource kinds.
pub const N_COUNTED: usize = 4;

/// Opening verbs per counted kind.
pub const OPEN_VERBS: [&[&str]; N_COUNTED] = [
    &["phase_begin"],
    &["post_wqe"],
    &["span_begin", "begin_span"],
    &["try_admit"],
];

/// Closing verbs per counted kind.
pub const CLOSE_VERBS: [&[&str]; N_COUNTED] = [
    &["phase_end"],
    &["poll_wqe"],
    &["span_end", "end_span"],
    &["release"],
];

/// Identifiers that count as leaf-lock release evidence (exact match).
/// `reclaim` is deliberately *not* release evidence: the full-word
/// reclaim CAS keeps the lock bit set — it transfers ownership to the
/// reclaimer, which still owes the release.
pub const RELEASE_IDENTS: &[&str] = &["unlock", "unlock_writes", "write_and_unlock", "release"];

/// Name fragments that mark a locking-protocol helper: its unreleased
/// acquire is the *caller's* obligation, not a finding.
pub const HELPER_FRAGMENTS: &[&str] = &["lock", "acquire", "reclaim"];

/// Lock classes for the lock-order rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LockClass {
    /// CN-side `LocalLockTable` slot (RAII guard).
    Local = 0,
    /// The per-partition migration lock (`part_lock` CAS 0→1).
    Part = 1,
    /// The on-leaf/on-node lock word (masked-CAS acquire verb).
    Leaf = 2,
}

/// Calls that acquire a local lock-table slot and hand the guard upward.
pub const LOCAL_VERBS: &[&str] = &["local_lock", "acquire_with", "try_acquire"];

/// Human name of a lock class (used in findings).
pub fn class_name(c: LockClass) -> &'static str {
    match c {
        LockClass::Local => "local-slot",
        LockClass::Part => "part-lock",
        LockClass::Leaf => "leaf-lock",
    }
}

/// The dataflow summary of one function.
#[derive(Debug, Clone, Default)]
pub struct FnSummary {
    /// Direct opens per counted kind.
    pub opens: [u32; N_COUNTED],
    /// Direct closes per counted kind.
    pub closes: [u32; N_COUNTED],
    /// Effective net (opens − closes, callees folded in) per counted kind.
    pub net: [i32; N_COUNTED],
    /// The function itself issues an acquire-shape masked-CAS.
    pub direct_acq: bool,
    /// Release evidence directly in the body.
    pub direct_rel: bool,
    /// Release evidence here or in any callee (transitive).
    pub releases: bool,
    /// An unreleased lock acquire reaches this function (directly or
    /// through helper-named callees).
    pub obligation: bool,
    /// The function's name marks it a locking-protocol helper.
    pub helper: bool,
    /// Lock classes this function leaks to its caller (acquired
    /// transitively, not released internally). Bit = `LockClass as u8`.
    pub leaked_classes: u8,
}

impl FnSummary {
    /// Whether class `c` leaks from this function.
    pub fn leaks(&self, c: LockClass) -> bool {
        self.leaked_classes & (1 << c as u8) != 0
    }
}

/// The analyzed workspace: one summary per global function id.
pub struct Dataflow {
    /// Indexed by global function id.
    pub summaries: Vec<FnSummary>,
}

/// Net clamp bound: recursion saturates here instead of diverging.
const NET_CLAMP: i32 = 16;
/// Fixpoint rounds; nets and leak sets stabilize far earlier on real
/// call graphs, the bound only caps pathological cycles (it exceeds
/// `NET_CLAMP` so a self-recursive net saturates at the clamp instead of
/// stopping mid-climb at the round limit).
const ROUNDS: usize = 24;

/// Runs the analysis.
pub fn analyze(ws: &Workspace, cg: &CallGraph) -> Dataflow {
    let n = ws.fns.len();
    let mut sums: Vec<FnSummary> = (0..n).map(|gid| direct_summary(ws, gid)).collect();

    // 1. Close `releases` (monotone: a release anywhere below suffices).
    for _ in 0..ROUNDS {
        let mut changed = false;
        for gid in 0..n {
            if sums[gid].releases {
                continue;
            }
            let hit = cg.sites[gid]
                .iter()
                .flat_map(|s| s.callees.iter())
                .any(|&d| sums[d].releases);
            if hit {
                sums[gid].releases = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // 2. Obligations against the fixed release set. A call site passes
    //    the obligation up only when its name is helper-shaped and every
    //    same-named definition is obligated-and-unreleased (ambiguity
    //    stays quiet).
    for _ in 0..ROUNDS {
        let mut changed = false;
        for gid in 0..n {
            if sums[gid].obligation {
                continue;
            }
            let hit = cg.sites[gid].iter().any(|s| {
                is_helper_name(&s.name)
                    && !s.callees.is_empty()
                    && s.callees
                        .iter()
                        .all(|&d| sums[d].obligation && !sums[d].releases)
            });
            if hit {
                sums[gid].obligation = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // 3. Counted nets to a bounded fixpoint.
    for _ in 0..ROUNDS {
        let mut changed = false;
        for gid in 0..n {
            let mut net = [0i32; N_COUNTED];
            for (k, nk) in net.iter_mut().enumerate() {
                *nk = sums[gid].opens[k] as i32 - sums[gid].closes[k] as i32;
            }
            for s in &cg.sites[gid] {
                for (k, nk) in net.iter_mut().enumerate() {
                    *nk += site_net(s, k, &sums);
                }
            }
            for (k, nk) in net.iter().enumerate() {
                let clamped = (*nk).clamp(-NET_CLAMP, NET_CLAMP);
                if sums[gid].net[k] != clamped {
                    sums[gid].net[k] = clamped;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    // 4. Leaked lock classes: acquired here or leaked by a callee, and
    //    not released for that class in this body. As with obligations,
    //    leaks only travel through helper-shaped call names where every
    //    same-named definition agrees — the name-based graph is too
    //    densely connected (`get`, `push`, `new`, ...) for unconditional
    //    transitive closure.
    for _ in 0..ROUNDS {
        let mut changed = false;
        for gid in 0..n {
            let mut classes = direct_acquired_classes(ws, gid);
            for s in &cg.sites[gid] {
                if !is_helper_name(&s.name) || s.callees.is_empty() {
                    continue;
                }
                let mut agreed = u8::MAX;
                for &d in &s.callees {
                    agreed &= sums[d].leaked_classes;
                }
                classes |= agreed;
            }
            classes &= !direct_released_classes(ws, gid);
            if sums[gid].leaked_classes != classes {
                sums[gid].leaked_classes = classes;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    Dataflow { summaries: sums }
}

/// The contribution of call site `s` to its caller's net for kind `k`:
/// the callees' agreed net, or zero for verbs (counted directly),
/// unresolved names, and disagreeing resolutions.
pub fn site_net(s: &CallSite, k: usize, sums: &[FnSummary]) -> i32 {
    let name = s.name.as_str();
    if OPEN_VERBS[k].contains(&name) || CLOSE_VERBS[k].contains(&name) {
        return 0; // direct event, already counted
    }
    let mut nets = s.callees.iter().map(|&d| sums[d].net[k]);
    match nets.next() {
        Some(first) if nets.all(|n| n == first) => first,
        _ => 0,
    }
}

/// Whether `name` is helper-shaped for the lock obligation.
pub fn is_helper_name(name: &str) -> bool {
    HELPER_FRAGMENTS.iter().any(|h| name.contains(h))
}

/// Builds the direct (intra-body) part of a function's summary.
fn direct_summary(ws: &Workspace, gid: usize) -> FnSummary {
    let (file, span) = ws.fn_at(gid);
    let toks = &file.toks;
    let mut s = FnSummary {
        helper: is_helper_name(&span.name),
        ..FnSummary::default()
    };
    if span.body.1 <= span.body.0 {
        return s;
    }
    for i in span.body.0..span.body.1.min(toks.len()) {
        if toks[i].kind != TokKind::Ident || !toks.get(i + 1).is_some_and(|t| t.is_punct('(')) {
            continue;
        }
        if i > 0 && toks[i - 1].is_ident("fn") {
            continue;
        }
        let name = toks[i].text.as_str();
        for k in 0..N_COUNTED {
            if OPEN_VERBS[k].contains(&name) {
                s.opens[k] += 1;
            }
            if CLOSE_VERBS[k].contains(&name) {
                s.closes[k] += 1;
            }
        }
    }
    s.direct_acq = masked_cas_calls(toks, span.body)
        .iter()
        .any(|c| c.is_acquire_shape(toks));
    s.direct_rel = has_direct_release(ws, gid);
    s.obligation = s.direct_acq && !s.direct_rel;
    s.releases = s.direct_rel;
    s
}

/// Direct leaf-lock release evidence in the body of `gid`.
fn has_direct_release(ws: &Workspace, gid: usize) -> bool {
    let (file, span) = ws.fn_at(gid);
    let toks = &file.toks;
    (span.body.0..span.body.1.min(toks.len())).any(|i| {
        RELEASE_IDENTS.iter().any(|r| toks[i].is_ident(r))
            || (is_write_call(toks, i) && write_targets_lock(toks, i))
    })
}

fn is_write_call(toks: &[crate::lexer::Tok], i: usize) -> bool {
    (toks[i].is_ident("write") || toks[i].is_ident("write_batch"))
        && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
        && !(i > 0 && toks[i - 1].is_ident("fn"))
}

/// Whether the `write`/`write_batch` call at `i` mentions a lock-ish
/// address in its arguments (e.g. `lock_addr`).
pub fn write_targets_lock(toks: &[crate::lexer::Tok], i: usize) -> bool {
    match call_args(toks, i + 1) {
        Some(args) => args.iter().any(|&(s, e)| {
            toks[s..e]
                .iter()
                .any(|t| t.kind == TokKind::Ident && t.text.contains("lock"))
        }),
        None => false,
    }
}

/// Whether a call's arguments mention the partition lock.
pub fn args_mention_part_lock(toks: &[crate::lexer::Tok], i: usize) -> bool {
    match call_args(toks, i + 1) {
        Some(args) => args.iter().any(|&(s, e)| {
            toks[s..e]
                .iter()
                .any(|t| t.kind == TokKind::Ident && t.text.contains("part_lock"))
        }),
        None => false,
    }
}

/// Lock classes directly acquired in the body of `gid`.
fn direct_acquired_classes(ws: &Workspace, gid: usize) -> u8 {
    let (file, span) = ws.fn_at(gid);
    let toks = &file.toks;
    let mut classes = 0u8;
    if span.body.1 <= span.body.0 {
        return classes;
    }
    for i in span.body.0..span.body.1.min(toks.len()) {
        if toks[i].kind != TokKind::Ident || !toks.get(i + 1).is_some_and(|t| t.is_punct('(')) {
            continue;
        }
        let name = toks[i].text.as_str();
        if LOCAL_VERBS.contains(&name) {
            classes |= 1 << LockClass::Local as u8;
        }
        if name == "cas" && args_mention_part_lock(toks, i) {
            classes |= 1 << LockClass::Part as u8;
        }
    }
    if masked_cas_calls(toks, span.body)
        .iter()
        .any(|c| c.is_acquire_shape(toks))
    {
        classes |= 1 << LockClass::Leaf as u8;
    }
    classes
}

/// Lock classes directly released in the body of `gid`.
fn direct_released_classes(ws: &Workspace, gid: usize) -> u8 {
    let (file, span) = ws.fn_at(gid);
    let toks = &file.toks;
    let mut classes = 0u8;
    if span.body.1 <= span.body.0 {
        return classes;
    }
    for i in span.body.0..span.body.1.min(toks.len()) {
        if RELEASE_IDENTS.iter().any(|r| toks[i].is_ident(r)) {
            classes |= 1 << LockClass::Leaf as u8;
        }
        if is_write_call(toks, i) {
            if args_mention_part_lock(toks, i) {
                classes |= 1 << LockClass::Part as u8;
            } else if write_targets_lock(toks, i) {
                classes |= 1 << LockClass::Leaf as u8;
            }
        }
    }
    classes
}

/// Effective open/close counts of one function for one counted kind,
/// with the token positions of the first opening and last closing event
/// (for the escape-hatch interval scan).
#[derive(Debug, Default, Clone, Copy)]
pub struct Balance {
    /// Direct opens plus positive callee nets.
    pub opens: u32,
    /// Direct closes plus negative callee nets.
    pub closes: u32,
    /// Token index of the first opening event.
    pub first_open: Option<usize>,
    /// Token index of the last closing event.
    pub last_close: Option<usize>,
}

/// Computes the effective balance of counted kind `k` for function `gid`.
pub fn balance_of(ws: &Workspace, cg: &CallGraph, dfa: &Dataflow, gid: usize, k: usize) -> Balance {
    let (file, span) = ws.fn_at(gid);
    let toks = &file.toks;
    let mut b = Balance::default();
    if span.body.1 <= span.body.0 {
        return b;
    }
    let mut site_iter = cg.sites[gid].iter().peekable();
    for i in span.body.0..span.body.1.min(toks.len()) {
        // Advance the site cursor to this token if it is a call site.
        let site = match site_iter.peek() {
            Some(s) if s.tok == i => site_iter.next(),
            _ => None,
        };
        if toks[i].kind != TokKind::Ident || !toks.get(i + 1).is_some_and(|t| t.is_punct('(')) {
            continue;
        }
        if i > 0 && toks[i - 1].is_ident("fn") {
            continue;
        }
        let name = toks[i].text.as_str();
        let (dopen, dclose) = (
            OPEN_VERBS[k].contains(&name),
            CLOSE_VERBS[k].contains(&name),
        );
        if dopen {
            b.opens += 1;
            b.first_open.get_or_insert(i);
        }
        if dclose {
            b.closes += 1;
            b.last_close = Some(i);
        }
        if !dopen && !dclose {
            if let Some(s) = site {
                let net = site_net(s, k, &dfa.summaries);
                if net > 0 {
                    b.opens += net as u32;
                    b.first_open.get_or_insert(i);
                } else if net < 0 {
                    b.closes += (-net) as u32;
                    b.last_close = Some(i);
                }
            }
        }
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn analyzed(src: &str) -> (Workspace, CallGraph, Dataflow) {
        let ws = Workspace::new(vec![SourceFile::new("crates/x/src/lib.rs".into(), src)]);
        let cg = CallGraph::build(&ws);
        let dfa = analyze(&ws, &cg);
        (ws, cg, dfa)
    }

    fn gid(ws: &Workspace, name: &str) -> usize {
        ws.defs_named(name)[0]
    }

    #[test]
    fn wrapper_nets_propagate() {
        let (ws, _, dfa) = analyzed(
            "fn my_open(ep: &mut Ep) { ep.phase_begin(\"x\"); }\n\
             fn my_close(ep: &mut Ep) { ep.phase_end(); }\n\
             fn balanced_pair(ep: &mut Ep) { my_open(ep); my_close(ep); }\n\
             fn leaky(ep: &mut Ep) { my_open(ep); }",
        );
        let k = Counted::Phase as usize;
        assert_eq!(dfa.summaries[gid(&ws, "my_open")].net[k], 1);
        assert_eq!(dfa.summaries[gid(&ws, "my_close")].net[k], -1);
        assert_eq!(dfa.summaries[gid(&ws, "balanced_pair")].net[k], 0);
        assert_eq!(dfa.summaries[gid(&ws, "leaky")].net[k], 1);
    }

    #[test]
    fn recursion_clamps_instead_of_diverging() {
        let (ws, _, dfa) = analyzed("fn spiral(ep: &mut Ep) { ep.phase_begin(\"x\"); spiral(ep); }");
        let k = Counted::Phase as usize;
        assert_eq!(dfa.summaries[gid(&ws, "spiral")].net[k], NET_CLAMP);
    }

    #[test]
    fn permit_nets_are_tracked() {
        let (ws, _, dfa) = analyzed(
            "fn admit_only(a: &Admission) -> bool { a.try_admit() }\n\
             fn admit_and_release(a: &Admission) { if a.try_admit() { a.release(); } }",
        );
        let k = Counted::Permit as usize;
        assert_eq!(dfa.summaries[gid(&ws, "admit_only")].net[k], 1);
        assert_eq!(dfa.summaries[gid(&ws, "admit_and_release")].net[k], 0);
    }

    #[test]
    fn lock_obligation_flows_through_helpers() {
        let (ws, _, dfa) = analyzed(
            "fn lock_leaf(ep: &mut Ep, a: u64) { ep.masked_cas(a, 0, 1, 1, 1); }\n\
             fn good(ep: &mut Ep, a: u64) { lock_leaf(ep, a); ep.unlock_writes(a); }\n\
             fn bad(ep: &mut Ep, a: u64) { lock_leaf(ep, a); }",
        );
        let lock_leaf = &dfa.summaries[gid(&ws, "lock_leaf")];
        assert!(lock_leaf.helper && lock_leaf.obligation && !lock_leaf.releases);
        let good = &dfa.summaries[gid(&ws, "good")];
        assert!(good.obligation && good.releases);
        let bad = &dfa.summaries[gid(&ws, "bad")];
        assert!(bad.obligation && !bad.releases);
    }

    #[test]
    fn release_in_callee_counts() {
        let (ws, _, dfa) = analyzed(
            "fn finish(ep: &mut Ep, a: u64) { ep.write(a.lock_off(), &0u64.to_le_bytes()); }\n\
             fn op(ep: &mut Ep, a: u64) { ep.masked_cas(a, 0, 1, 1, 1); finish(ep, a); }",
        );
        let op = &dfa.summaries[gid(&ws, "op")];
        assert!(op.direct_acq && !op.direct_rel && op.releases);
    }

    #[test]
    fn reclaim_is_not_release_evidence() {
        let (ws, _, dfa) = analyzed(
            "fn takeover(ep: &mut Ep, a: u64, old: u64) { ep.cas(a, old, reclaimed(old)); }",
        );
        assert!(!dfa.summaries[gid(&ws, "takeover")].releases);
    }

    #[test]
    fn leaked_lock_classes() {
        let (ws, _, dfa) = analyzed(
            "fn lock_it(ep: &mut Ep, a: u64) { ep.masked_cas(a, 0, 1, 1, 1); }\n\
             fn scoped(ep: &mut Ep, a: u64) { lock_it(ep, a); ep.unlock_writes(a); }\n\
             fn grab_slot(t: &Table, a: u64) { t.acquire_with(a, ep); }",
        );
        assert!(dfa.summaries[gid(&ws, "lock_it")].leaks(LockClass::Leaf));
        assert!(!dfa.summaries[gid(&ws, "scoped")].leaks(LockClass::Leaf));
        assert!(dfa.summaries[gid(&ws, "grab_slot")].leaks(LockClass::Local));
    }

    #[test]
    fn balance_positions_cover_callee_events() {
        let (ws, cg, dfa) = analyzed(
            "fn my_open(ep: &mut Ep) { ep.phase_begin(\"x\"); }\n\
             fn f(ep: &mut Ep) -> Option<u64> { my_open(ep); let v = probe(ep)?; ep.phase_end(); Some(v) }",
        );
        let b = balance_of(&ws, &cg, &dfa, gid(&ws, "f"), Counted::Phase as usize);
        assert_eq!((b.opens, b.closes), (1, 1));
        let (file, _) = ws.fn_at(gid(&ws, "f"));
        let q = file.toks.iter().position(|t| t.is_punct('?')).unwrap();
        assert!(b.first_open.unwrap() < q && q < b.last_close.unwrap());
    }
}
