//! The workspace call graph: call sites resolved to definitions by name.
//!
//! A call site is an identifier immediately followed by `(` that is not a
//! definition (`fn name`), not a control-flow keyword, and not shadowed
//! by a `let` binding or parameter of the enclosing function (a shadowed
//! name calls a closure or function value, whose target the lexer cannot
//! know — those sites resolve to nothing rather than to the same-named
//! global function). Method-call syntax (`recv.name(args)`) resolves the
//! same way as free calls: CHIME's protocol verbs have globally unique
//! method names, which is exactly what makes a lexer-level call graph
//! sound enough to carry the interprocedural rules.
//!
//! One arity guard keeps the name-based scheme honest: a call with an
//! empty argument list never resolves to a definition whose parameter
//! list requires arguments. Without it, every `mutex.lock()` guard
//! acquisition in the repo would resolve to the leaf-lock protocol
//! helper `fn lock(&mut self, ep, addr)` and poison the interprocedural
//! lock summaries of every function that touches the CN cache.
//!
//! Everything is index-based over the [`Workspace`]'s canonical file
//! order, so the graph is deterministic and stable under re-ordering of
//! the input file list.

use std::collections::BTreeSet;

use crate::lexer::TokKind;
use crate::workspace::Workspace;

/// Keywords that may appear directly before `(` without being calls.
const KEYWORDS: &[&str] = &[
    "if", "while", "match", "return", "for", "loop", "in", "move", "as", "let", "else", "fn",
    "unsafe", "break", "continue", "where", "impl", "pub", "ref", "mut", "box", "await", "yield",
];

/// One resolved call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Token index of the callee name, in the caller's file.
    pub tok: usize,
    /// 1-based source line of the call.
    pub line: u32,
    /// The called name, verbatim.
    pub name: String,
    /// Global function ids of every same-named definition (sorted).
    /// Empty when the workspace defines no such function or the name is
    /// shadowed at this site.
    pub callees: Vec<usize>,
}

/// The call graph: for every global function id, its call sites in body
/// token order.
pub struct CallGraph {
    /// Indexed by global function id.
    pub sites: Vec<Vec<CallSite>>,
}

impl CallGraph {
    /// Builds the graph for `ws`.
    pub fn build(ws: &Workspace) -> CallGraph {
        let mut sites = Vec::with_capacity(ws.fns.len());
        for gid in 0..ws.fns.len() {
            sites.push(scan_fn(ws, gid));
        }
        CallGraph { sites }
    }

    /// The distinct callee ids of `gid`, sorted.
    pub fn callees_of(&self, gid: usize) -> BTreeSet<usize> {
        self.sites[gid]
            .iter()
            .flat_map(|s| s.callees.iter().copied())
            .collect()
    }
}

fn scan_fn(ws: &Workspace, gid: usize) -> Vec<CallSite> {
    let (file, span) = ws.fn_at(gid);
    let toks = &file.toks;
    if span.body.1 <= span.body.0 {
        return Vec::new();
    }
    let shadowed = shadowed_names(ws, gid);
    let mut out = Vec::new();
    for i in span.body.0..span.body.1.min(toks.len()) {
        let t = &toks[i];
        if t.kind != TokKind::Ident
            || !toks.get(i + 1).is_some_and(|n| n.is_punct('('))
            || (i > 0 && toks[i - 1].is_ident("fn"))
            || KEYWORDS.contains(&t.text.as_str())
        {
            continue;
        }
        let mut callees = if shadowed.contains(&t.text) {
            Vec::new()
        } else {
            ws.defs_named(&t.text).to_vec()
        };
        // Arity guard: `recv.name()` with no arguments cannot be a call
        // to a definition that requires them (think `mutex.lock()` vs the
        // protocol helper `fn lock(&mut self, ep, addr)`).
        if toks.get(i + 2).is_some_and(|n| n.is_punct(')')) {
            callees.retain(|&d| !requires_args(ws, d));
        }
        out.push(CallSite {
            tok: i,
            line: t.line,
            name: t.text.clone(),
            callees,
        });
    }
    out
}

/// Whether the definition's parameter list requires at least one
/// argument at the call site — i.e. its header declares a `name: Type`
/// parameter. A bare `self` receiver (any flavor) does not count: it is
/// supplied by method syntax, not the argument list.
fn requires_args(ws: &Workspace, gid: usize) -> bool {
    let (file, span) = ws.fn_at(gid);
    let toks = &file.toks;
    // Scan the header's parameter parens: first `(` after the name.
    let mut i = span.toks.0;
    let end = span.body.0.min(toks.len());
    while i < end && !toks[i].is_punct('(') {
        i += 1;
    }
    let mut depth = 0i32;
    while i < end {
        let t = &toks[i];
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if depth == 1 && t.is_punct(':') && i > 0 && !toks[i - 1].is_ident("self") {
            return true;
        }
        i += 1;
    }
    false
}

/// Names bound by `let` patterns in the body or by parameters in the
/// header — call sites through these are closure/function-value calls.
fn shadowed_names(ws: &Workspace, gid: usize) -> BTreeSet<String> {
    let (file, span) = ws.fn_at(gid);
    let toks = &file.toks;
    let mut names = BTreeSet::new();
    // `let` patterns: every identifier between `let` and the first `:`,
    // `=` or `;` (covers `let f`, `let mut f`, `let (f, g)`).
    for i in span.body.0..span.body.1.min(toks.len()) {
        if !toks[i].is_ident("let") {
            continue;
        }
        let mut j = i + 1;
        while j < span.body.1.min(toks.len()) {
            let t = &toks[j];
            if t.is_punct(':') || t.is_punct('=') || t.is_punct(';') {
                break;
            }
            if t.kind == TokKind::Ident && !t.is_ident("mut") && !t.is_ident("ref") {
                names.insert(t.text.clone());
            }
            j += 1;
        }
    }
    // Parameters: identifiers followed by `:` in the header range.
    for i in span.toks.0..span.body.0.min(toks.len()) {
        if toks[i].kind == TokKind::Ident && toks.get(i + 1).is_some_and(|t| t.is_punct(':')) {
            names.insert(toks[i].text.clone());
        }
    }
    names
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn ws(files: Vec<(&str, &str)>) -> Workspace {
        Workspace::new(
            files
                .into_iter()
                .map(|(p, s)| SourceFile::new(p.to_string(), s))
                .collect(),
        )
    }

    fn gid_of(w: &Workspace, name: &str) -> usize {
        w.defs_named(name)[0]
    }

    #[test]
    fn calls_resolve_across_files() {
        let w = ws(vec![
            ("crates/a/src/lib.rs", "fn caller() { helper(); }"),
            ("crates/b/src/lib.rs", "fn helper() {}"),
        ]);
        let cg = CallGraph::build(&w);
        let caller = gid_of(&w, "caller");
        let callees = cg.callees_of(caller);
        assert_eq!(callees.len(), 1);
        assert!(callees.contains(&gid_of(&w, "helper")));
    }

    #[test]
    fn method_calls_resolve_by_name() {
        let w = ws(vec![(
            "crates/a/src/lib.rs",
            "fn op(ep: &mut Ep) { ep.acquire_leaf(7); }\nfn acquire_leaf(x: u64) {}",
        )]);
        let cg = CallGraph::build(&w);
        assert!(cg.callees_of(gid_of(&w, "op")).contains(&gid_of(&w, "acquire_leaf")));
    }

    #[test]
    fn let_shadowed_names_do_not_resolve() {
        let w = ws(vec![(
            "crates/a/src/lib.rs",
            "fn target() {}\nfn shadows() { let target = || (); target(); }\nfn calls() { target(); }",
        )]);
        let cg = CallGraph::build(&w);
        assert!(cg.callees_of(gid_of(&w, "shadows")).is_empty());
        assert_eq!(cg.callees_of(gid_of(&w, "calls")).len(), 1);
    }

    #[test]
    fn fn_typed_params_do_not_resolve() {
        let w = ws(vec![(
            "crates/a/src/lib.rs",
            "fn target() {}\nfn run(target: impl Fn()) { target(); }",
        )]);
        let cg = CallGraph::build(&w);
        assert!(cg.callees_of(gid_of(&w, "run")).is_empty());
    }

    #[test]
    fn zero_arg_calls_do_not_resolve_to_arg_taking_fns() {
        // `cache.lock()` is a mutex guard, not the leaf-lock protocol
        // helper; the arity guard keeps them apart. A genuinely nullary
        // definition still resolves.
        let w = ws(vec![(
            "crates/a/src/lib.rs",
            "fn lock(ep: &mut Ep, addr: u64) {}\nfn tick(&self) {}\n\
             fn op(c: &Cache) { c.lock(); c.tick(); }",
        )]);
        let cg = CallGraph::build(&w);
        let callees = cg.callees_of(gid_of(&w, "op"));
        assert!(!callees.contains(&gid_of(&w, "lock")), "arity mismatch must not resolve");
        assert!(callees.contains(&gid_of(&w, "tick")), "nullary method must resolve");
    }

    #[test]
    fn keywords_are_not_calls() {
        let w = ws(vec![(
            "crates/a/src/lib.rs",
            "fn f(x: u64) -> u64 { if (x > 0) { return (x); } match (x) { _ => 0 } }",
        )]);
        let cg = CallGraph::build(&w);
        assert!(cg.sites[gid_of(&w, "f")].is_empty());
    }
}
