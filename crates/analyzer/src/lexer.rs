//! A comment- and string-aware Rust lexer.
//!
//! The analyzer does not need a full parser: every rule it enforces is
//! expressible over a token stream with brace structure, as long as the
//! stream never confuses code with the contents of comments, string
//! literals, or char literals. This lexer produces exactly that: a vector
//! of *code* tokens (identifiers, punctuation, literals) and a separate
//! vector of comments, each tagged with its 1-based source line.
//!
//! Handled Rust syntax that naive scanners get wrong:
//!
//! * nested block comments (`/* /* */ */`);
//! * raw strings with arbitrary hash counts (`r#"..."#`, `br##"..."##`);
//! * byte strings and byte chars (`b"..."`, `b'x'`);
//! * char literals vs. lifetimes (`'a'` vs. `'a`), including escaped chars;
//! * raw identifiers (`r#match`, `r#type`) vs. raw-string prefixes (`r#"`);
//! * numeric literals with underscores, radix prefixes and type suffixes.

/// The kind of a code token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `unsafe`, `masked_cas`, ...).
    Ident,
    /// A single punctuation character (`.`, `:`, `{`, `?`, ...).
    Punct,
    /// Integer or float literal, verbatim (`0x3FF`, `10_000u64`, `1.5`).
    Num,
    /// String, raw-string or byte-string literal (contents opaque).
    Str,
    /// Char or byte-char literal (contents opaque).
    Char,
    /// A lifetime (`'a`, `'static`), label included.
    Lifetime,
}

/// One code token.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token kind.
    pub kind: TokKind,
    /// Verbatim text for `Ident`/`Num`/`Punct`; empty for opaque literals.
    pub text: String,
    /// 1-based source line of the token's first character.
    pub line: u32,
}

impl Tok {
    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.as_bytes()[0] == c as u8
    }
}

/// One comment (line or block, doc or plain).
#[derive(Debug, Clone)]
pub struct Comment {
    /// Comment text including its delimiters.
    pub text: String,
    /// 1-based line of the comment's first character.
    pub line: u32,
    /// 1-based line of the comment's last character.
    pub end_line: u32,
    /// Whether the comment is the first non-whitespace on its line.
    pub owns_line: bool,
}

/// The lexed form of one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order, comments stripped.
    pub toks: Vec<Tok>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

/// Lexes `src` into code tokens and comments. Unterminated constructs are
/// tolerated (consumed to end of input) so the linter never panics on
/// malformed input.
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;
    // True until a non-whitespace byte is seen on the current line.
    let mut at_line_start = true;

    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                at_line_start = true;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => {
                i += 1;
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                out.comments.push(Comment {
                    text: src[start..i].to_string(),
                    line,
                    end_line: line,
                    owns_line: at_line_start,
                });
                at_line_start = false;
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let start = i;
                let start_line = line;
                let owns = at_line_start;
                let mut depth = 1u32;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                out.comments.push(Comment {
                    text: src[start..i.min(src.len())].to_string(),
                    line: start_line,
                    end_line: line,
                    owns_line: owns,
                });
                at_line_start = false;
            }
            b'"' => {
                let tok_line = line;
                i = skip_string(b, i, &mut line);
                out.toks.push(Tok {
                    kind: TokKind::Str,
                    text: String::new(),
                    line: tok_line,
                });
                at_line_start = false;
            }
            b'r' if b.get(i + 1) == Some(&b'#')
                && b
                    .get(i + 2)
                    .is_some_and(|&c| c.is_ascii_alphabetic() || c == b'_') =>
            {
                // Raw identifier: `r#match`, `r#type`. One Ident token whose
                // text keeps the `r#` prefix, so keyword-driven scans (e.g.
                // loop extraction looking for `loop`) never mistake
                // `r#loop` for the keyword.
                let start = i;
                let tok_line = line;
                i += 2;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                out.toks.push(Tok {
                    kind: TokKind::Ident,
                    text: src[start..i].to_string(),
                    line: tok_line,
                });
                at_line_start = false;
            }
            b'r' | b'b' if starts_string_prefix(b, i) => {
                let tok_line = line;
                let (end, kind) = skip_prefixed_literal(b, i, &mut line);
                i = end;
                out.toks.push(Tok {
                    kind,
                    text: String::new(),
                    line: tok_line,
                });
                at_line_start = false;
            }
            b'\'' => {
                let tok_line = line;
                if let Some(end) = char_literal_end(b, i) {
                    i = end;
                    out.toks.push(Tok {
                        kind: TokKind::Char,
                        text: String::new(),
                        line: tok_line,
                    });
                } else {
                    // Lifetime or loop label: 'ident
                    let start = i;
                    i += 1;
                    while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                        i += 1;
                    }
                    out.toks.push(Tok {
                        kind: TokKind::Lifetime,
                        text: src[start..i].to_string(),
                        line: tok_line,
                    });
                }
                at_line_start = false;
            }
            _ if c.is_ascii_digit() => {
                let start = i;
                let tok_line = line;
                i = skip_number(b, i);
                out.toks.push(Tok {
                    kind: TokKind::Num,
                    text: src[start..i].to_string(),
                    line: tok_line,
                });
                at_line_start = false;
            }
            _ if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                let tok_line = line;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                out.toks.push(Tok {
                    kind: TokKind::Ident,
                    text: src[start..i].to_string(),
                    line: tok_line,
                });
                at_line_start = false;
            }
            _ => {
                out.toks.push(Tok {
                    kind: TokKind::Punct,
                    text: (c as char).to_string(),
                    line,
                });
                at_line_start = false;
                i += 1;
            }
        }
    }
    out
}

/// Whether position `i` starts a raw/byte string or byte-char prefix
/// (`r"`, `r#"`, `r##"`, `b"`, `b'`, `br"`, `br#`). `r#` followed by an
/// identifier-start character is a *raw identifier* (`r#match`), not a
/// string prefix.
fn starts_string_prefix(b: &[u8], i: usize) -> bool {
    match b[i] {
        b'r' => match b.get(i + 1) {
            Some(b'"') => true,
            Some(b'#') => !b
                .get(i + 2)
                .is_some_and(|&c| c.is_ascii_alphabetic() || c == b'_'),
            _ => false,
        },
        b'b' => match b.get(i + 1) {
            Some(b'"') | Some(b'\'') => true,
            Some(b'r') => matches!(b.get(i + 2), Some(b'"') | Some(b'#')),
            _ => false,
        },
        _ => false,
    }
}

/// Skips a plain string literal starting at the opening quote; returns the
/// index just past the closing quote.
fn skip_string(b: &[u8], mut i: usize, line: &mut u32) -> usize {
    i += 1; // opening quote
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// Skips `r"..."`, `r#"..."#`, `b"..."`, `br#"..."#` or `b'x'` starting at
/// the prefix; returns (end index, token kind).
fn skip_prefixed_literal(b: &[u8], mut i: usize, line: &mut u32) -> (usize, TokKind) {
    let mut raw = false;
    if b[i] == b'b' {
        i += 1;
        if i < b.len() && b[i] == b'\'' {
            // Byte char: b'x' or b'\n'
            i += 1;
            if i < b.len() && b[i] == b'\\' {
                i += 2;
            } else {
                i += 1;
            }
            if i < b.len() && b[i] == b'\'' {
                i += 1;
            }
            return (i, TokKind::Char);
        }
    }
    if i < b.len() && b[i] == b'r' {
        raw = true;
        i += 1;
    }
    if raw {
        let mut hashes = 0usize;
        while i < b.len() && b[i] == b'#' {
            hashes += 1;
            i += 1;
        }
        if i < b.len() && b[i] == b'"' {
            i += 1;
            // Scan for `"` followed by `hashes` hash characters.
            while i < b.len() {
                if b[i] == b'\n' {
                    *line += 1;
                    i += 1;
                } else if b[i] == b'"' && b[i + 1..].len() >= hashes
                    && b[i + 1..i + 1 + hashes].iter().all(|&h| h == b'#')
                {
                    return (i + 1 + hashes, TokKind::Str);
                } else {
                    i += 1;
                }
            }
        }
        (i, TokKind::Str)
    } else {
        (skip_string(b, i, line), TokKind::Str)
    }
}

/// Returns the end index of a char literal starting at `'`, or `None` if
/// this is a lifetime.
fn char_literal_end(b: &[u8], i: usize) -> Option<usize> {
    let next = *b.get(i + 1)?;
    if next == b'\\' {
        // Escaped char: '\n', '\u{...}', '\''
        let mut j = i + 2;
        if b.get(j) == Some(&b'u') && b.get(j + 1) == Some(&b'{') {
            j += 2;
            while j < b.len() && b[j] != b'}' {
                j += 1;
            }
            j += 1;
        } else {
            j += 1;
        }
        if b.get(j) == Some(&b'\'') {
            return Some(j + 1);
        }
        return None;
    }
    // 'x' is a char literal; 'x (no closing quote right after one scalar)
    // is a lifetime. Handle multi-byte UTF-8 scalars.
    let width = utf8_width(next);
    if b.get(i + 1 + width) == Some(&b'\'') {
        // 'a' — but only if the content is not itself a quote ('' is not
        // a char literal).
        if next != b'\'' {
            return Some(i + 1 + width + 1);
        }
    }
    None
}

fn utf8_width(first: u8) -> usize {
    match first {
         0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

/// Skips a numeric literal (int or float, any radix, suffixes allowed).
fn skip_number(b: &[u8], mut i: usize) -> usize {
    i += 1;
    while i < b.len() {
        let c = b[i];
        let continues = c.is_ascii_alphanumeric()
            || c == b'_'
            || (c == b'.' && b.get(i + 1).is_some_and(|n| n.is_ascii_digit()))
            || ((c == b'+' || c == b'-')
                && matches!(b.get(i.wrapping_sub(1)), Some(b'e') | Some(b'E')));
        if !continues {
            break;
        }
        i += 1;
    }
    i
}

/// Parses an integer literal token (`0x3FF`, `0b11`, `10_000u64`, `45`)
/// into its value. Returns `None` for floats or malformed literals.
pub fn int_value(text: &str) -> Option<u64> {
    let t: String = text.chars().filter(|&c| c != '_').collect();
    let t = t
        .trim_end_matches("usize")
        .trim_end_matches("isize")
        .trim_end_matches("u128")
        .trim_end_matches("i128")
        .trim_end_matches("u64")
        .trim_end_matches("i64")
        .trim_end_matches("u32")
        .trim_end_matches("i32")
        .trim_end_matches("u16")
        .trim_end_matches("i16")
        .trim_end_matches("u8")
        .trim_end_matches("i8");
    if let Some(h) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        u64::from_str_radix(h, 16).ok()
    } else if let Some(o) = t.strip_prefix("0o") {
        u64::from_str_radix(o, 8).ok()
    } else if let Some(bits) = t.strip_prefix("0b") {
        u64::from_str_radix(bits, 2).ok()
    } else {
        t.parse().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.clone())
            .collect()
    }

    #[test]
    fn strings_and_comments_are_not_code() {
        let l = lex("let x = \"Instant::now()\"; // thread_rng here\n/* HashMap */ y");
        assert_eq!(idents("let x = \"Instant::now()\";"), vec!["let", "x"]);
        assert_eq!(l.comments.len(), 2);
        assert!(l.comments[0].text.contains("thread_rng"));
        assert!(!l.toks.iter().any(|t| t.is_ident("HashMap")));
        assert!(l.toks.iter().any(|t| t.is_ident("y")));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let l = lex("let s = r#\"a \" quote Instant::now \"# ; next");
        assert!(!l.toks.iter().any(|t| t.is_ident("Instant")));
        assert!(l.toks.iter().any(|t| t.is_ident("next")));
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let l = lex("let b = b\"bytes\"; let c = b'\\''; let d = b'x'; after");
        assert!(l.toks.iter().any(|t| t.is_ident("after")));
        assert_eq!(
            l.toks.iter().filter(|t| t.kind == TokKind::Char).count(),
            2
        );
    }

    #[test]
    fn char_literal_vs_lifetime() {
        let l = lex("fn f<'a>(x: &'a str) { let c = 'x'; let q = '\\''; }");
        assert_eq!(
            l.toks.iter().filter(|t| t.kind == TokKind::Lifetime).count(),
            2
        );
        assert_eq!(l.toks.iter().filter(|t| t.kind == TokKind::Char).count(), 2);
    }

    #[test]
    fn nested_block_comments() {
        let l = lex("/* outer /* inner */ still comment */ code");
        assert_eq!(l.comments.len(), 1);
        assert_eq!(idents("/* a /* b */ c */ code"), vec!["code"]);
    }

    #[test]
    fn lines_are_tracked() {
        let l = lex("a\nb\n  c // tail\nd");
        let lines: Vec<u32> = l
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.line)
            .collect();
        assert_eq!(lines, vec![1, 2, 3, 4]);
        assert_eq!(l.comments[0].line, 3);
        assert!(!l.comments[0].owns_line);
    }

    #[test]
    fn int_values_parse() {
        assert_eq!(int_value("0x3FF"), Some(0x3FF));
        assert_eq!(int_value("0b11"), Some(3));
        assert_eq!(int_value("10_000u64"), Some(10_000));
        assert_eq!(int_value("45"), Some(45));
        assert_eq!(int_value("1"), Some(1));
        assert_eq!(int_value("1.5"), None);
    }

    #[test]
    fn raw_identifiers_are_single_idents_not_strings() {
        let l = lex("let r#match = r#type + 1; r#loop");
        assert!(
            !l.toks.iter().any(|t| t.kind == TokKind::Str),
            "raw identifiers must not lex as raw-string false-starts"
        );
        assert!(l.toks.iter().any(|t| t.is_ident("r#match")));
        assert!(l.toks.iter().any(|t| t.is_ident("r#type")));
        // The prefix is kept, so keyword scans never see a bare `loop`.
        assert!(!l.toks.iter().any(|t| t.is_ident("loop")));
        assert!(!l.toks.iter().any(|t| t.is_ident("match")));
        assert!(l.toks.iter().any(|t| t.is_punct('+')));
    }

    #[test]
    fn raw_strings_still_lex_after_raw_ident_fix() {
        let l = lex("r#\"text r#match inside\"# r##\"double\"## br#\"bytes\"# tail");
        assert_eq!(l.toks.iter().filter(|t| t.kind == TokKind::Str).count(), 3);
        assert!(!l.toks.iter().any(|t| t.is_ident("r#match")));
        assert!(l.toks.iter().any(|t| t.is_ident("tail")));
    }

    #[test]
    fn raw_ident_fn_names_survive() {
        let l = lex("fn r#type() { r#type(); } fn plain() {}");
        let raw: Vec<&Tok> = l.toks.iter().filter(|t| t.is_ident("r#type")).collect();
        assert_eq!(raw.len(), 2);
        assert!(l.toks.iter().any(|t| t.is_ident("plain")));
    }

    #[test]
    fn numeric_literals_with_suffix_then_method() {
        let l = lex("0u64.to_le_bytes()");
        assert_eq!(l.toks[0].text, "0u64");
        assert!(l.toks.iter().any(|t| t.is_ident("to_le_bytes")));
    }
}
