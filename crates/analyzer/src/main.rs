//! The `chime-lint` binary.
//!
//! ```text
//! chime-lint [--root DIR] [--json PATH] [--quiet]
//! ```
//!
//! Lints the workspace's production sources (`crates/*/src/**/*.rs`),
//! prints the sorted human-readable report to stdout and, with
//! `--json`, writes the byte-deterministic machine-readable report.
//! Exit code 0 when clean, 1 when findings survive suppression, 2 on
//! usage or I/O errors.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut json_out: Option<PathBuf> = None;
    let mut quiet = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage("--root needs a value"),
            },
            "--json" => match args.next() {
                Some(v) => json_out = Some(PathBuf::from(v)),
                None => return usage("--json needs a value"),
            },
            "--quiet" => quiet = true,
            "--rules" => {
                for r in analyzer::rules::RULES {
                    println!("{r}");
                }
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let report = match analyzer::lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("chime-lint: cannot lint {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    if let Some(path) = &json_out {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                if let Err(e) = std::fs::create_dir_all(parent) {
                    eprintln!("chime-lint: cannot create {}: {e}", parent.display());
                    return ExitCode::from(2);
                }
            }
        }
        if let Err(e) = std::fs::write(path, report.to_json()) {
            eprintln!("chime-lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if !quiet || !report.findings.is_empty() {
        print!("{}", report.to_text());
    }
    if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage(err: &str) -> ExitCode {
    eprintln!("chime-lint: {err}\nusage: chime-lint [--root DIR] [--json PATH] [--quiet] [--rules]");
    ExitCode::from(2)
}
