# Convenience targets; `make verify` is what CI runs.

CARGO ?= cargo

.PHONY: verify build test lint lint-chime model-check chaos serve serve-smoke perf-smoke baseline explain clean

# Tier-1 gate (build + tests) plus the clippy lint wall, the protocol-aware
# chime-lint pass, the chime-model exhaustive protocol check, a fixed-seed
# chaos smoke run (deterministic fault injection with a
# crash-while-holding-a-leaf-lock scenario, serial and pipelined), the
# serving-layer determinism/chaos suite, and the perf gate (including the
# K=4 coroutine points and the serve point).
verify: build test lint lint-chime model-check chaos serve perf-smoke

build:
	$(CARGO) build --release

test:
	$(CARGO) test -q

lint:
	$(CARGO) clippy --all-targets -- -D warnings

# Protocol-aware static analysis (lock-word layout, masked-CAS discipline,
# phase balance, determinism); writes the machine-readable report too.
lint-chime:
	$(CARGO) run --release -q -p analyzer --bin chime-lint -- --root . --json results/lint.json

# Exhaustive model check of the lock-lease protocol and the partition
# migration crash/recovery machine, against the layout extracted from the
# shipping lockword.rs. Verifies mutual exclusion, lease safety, routing
# integrity, journal discipline, progress; refutes the two seeded probes.
model-check:
	$(CARGO) run --release -q -p analyzer --bin chime-model -- --root . --json results/model.json

chaos:
	$(CARGO) test -p chime --test chaos --test chaos_pipelined -q
	$(CARGO) test -p part --test chaos -q

# Serving-layer gate: byte-identical replay under a fixed seed plus the
# connection-storm chaos suite (drops mid-pipeline, slow readers,
# admission exhaustion, composed fault injection).
serve:
	$(CARGO) test -p serve --test determinism --test chaos -q

# Real-TCP smoke: boots chime-server on a loopback port, drives the
# loadgen against it, and asserts every pipelined request is answered.
serve-smoke:
	$(CARGO) run --release -q -p serve --bin chime-server -- --smoke

# Fixed-seed micro-benchmark matrix compared against results/baseline.json;
# fails on any tolerance-exceeding regression. The simulator's virtual clock
# makes the numbers machine-independent.
perf-smoke:
	BENCH_OUT_DIR=results $(CARGO) run --release -p bench --bin perf_smoke

# Refresh the perf baseline after an intentional performance change.
baseline:
	BENCH_OUT_DIR=results $(CARGO) run --release -p bench --bin perf_smoke -- --write-baseline

# Attribute metric movement between two bench documents (BENCH_*.json or
# baseline.json), e.g. `make explain OLD=results/baseline.json NEW=new.json`.
OLD ?= results/baseline.json
NEW ?= results/BENCH_perf_smoke.json
explain:
	$(CARGO) run --release -p bench --bin explain -- $(OLD) $(NEW)

clean:
	$(CARGO) clean
