# Convenience targets; `make verify` is what CI runs.

CARGO ?= cargo

.PHONY: verify build test chaos clean

# Tier-1 gate plus a fixed-seed chaos smoke run (deterministic fault
# injection with a crash-while-holding-a-leaf-lock scenario).
verify: build test chaos

build:
	$(CARGO) build --release

test:
	$(CARGO) test -q

chaos:
	$(CARGO) test -p chime --test chaos -q

clean:
	$(CARGO) clean
