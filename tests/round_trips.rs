//! Protocol-cost tests: Table 1's round-trip counts and the paper's
//! amplification orderings, asserted from the verb statistics.

use dmem::{Pool, RangeIndex};
use ycsb::KeySpace;

fn chime_with(cache: u64, spec: bool) -> (chime::Chime, chime::ChimeClient) {
    let pool = Pool::with_defaults(1, 1 << 30);
    let cfg = chime::ChimeConfig {
        cache_bytes: cache,
        hotspot_bytes: if spec { 1 << 20 } else { 0 },
        speculative_read: spec,
        ..Default::default()
    };
    let t = chime::Chime::create(&pool, cfg, 0);
    let cn = t.new_cn();
    let mut c = t.client(&cn);
    for seq in 0..60_000u64 {
        c.insert(KeySpace::key(seq), &[1u8; 8]).unwrap();
    }
    (t, c)
}

/// Table 1 best case: search 1, insert 3, update/delete 3 (internal nodes
/// cached, no speculation).
#[test]
fn table1_best_case_round_trips() {
    let (_t, mut c) = chime_with(1 << 30, false);
    // Warm the CN cache.
    for seq in 0..20_000u64 {
        c.search(KeySpace::key(seq * 3 % 60_000)).unwrap();
    }
    let samples = 200u64;
    let rtts = |c: &mut chime::ChimeClient, f: &mut dyn FnMut(&mut chime::ChimeClient, u64)| {
        let before = c.stats().rtts;
        for s in 0..samples {
            f(c, s);
        }
        (c.stats().rtts - before) as f64 / samples as f64
    };
    let search = rtts(&mut c, &mut |c, s| {
        c.search(KeySpace::key((s * 7) % 60_000)).unwrap();
    });
    assert!(
        (0.95..=1.3).contains(&search),
        "search best case should be ~1 RTT, got {search}"
    );
    let update = rtts(&mut c, &mut |c, s| {
        assert!(c.update(KeySpace::key((s * 11) % 60_000), &[2u8; 8]).unwrap());
    });
    assert!(
        (2.9..=3.3).contains(&update),
        "update best case should be ~3 RTTs, got {update}"
    );
    let insert = rtts(&mut c, &mut |c, s| {
        c.insert(KeySpace::key(70_000 + s), &[3u8; 8]).unwrap();
    });
    assert!(
        (2.9..=3.9).contains(&insert),
        "insert best case should be ~3 RTTs (splits amortized), got {insert}"
    );
    let delete = rtts(&mut c, &mut |c, s| {
        assert!(c.delete(KeySpace::key(70_000 + s)).unwrap());
    });
    assert!(
        (2.9..=3.6).contains(&delete),
        "delete best case should be ~3 RTTs, got {delete}"
    );
}

/// Worst case adds h (tree height) round-trips per operation.
#[test]
fn table1_worst_case_adds_tree_height() {
    let (_t, mut c) = chime_with(0, false);
    let samples = 200u64;
    let before = c.stats().rtts;
    for s in 0..samples {
        c.search(KeySpace::key((s * 7) % 60_000)).unwrap();
    }
    let per_op = (c.stats().rtts - before) as f64 / samples as f64;
    // 60k keys / (64 * 0.8) per leaf ~ 1200 leaves -> 2 internal levels.
    assert!(
        (2.9..=3.4).contains(&per_op),
        "uncached search should be ~h+1 = 3 RTTs, got {per_op}"
    );
}

/// A correct speculation reduces the search to a single small READ.
#[test]
fn speculative_read_shrinks_traffic() {
    let (_t, mut c) = chime_with(1 << 30, true);
    // Make one key hot.
    for _ in 0..20 {
        c.search(KeySpace::key(42)).unwrap();
    }
    let before = c.stats().clone();
    for _ in 0..100 {
        c.search(KeySpace::key(42)).unwrap();
    }
    let d = c.stats().since(&before);
    assert_eq!(d.rtts, 100, "hot search is exactly one RTT");
    let bytes = d.wire_bytes / 100;
    // One 19-byte entry (plus line versions + header) vs a ~200-byte
    // neighborhood.
    assert!(bytes < 120, "speculative read bytes/op = {bytes}");
    assert!(c.counters.spec_hits >= 99);
}

/// CHIME's per-search bytes sit far below Sherman's whole-node reads and
/// the measured amplification ordering matches Fig. 1.
#[test]
fn amplification_ordering_chime_sherman_smart() {
    let pool = Pool::with_defaults(1, 1 << 30);
    let n = 30_000u64;
    // CHIME (no speculation, to measure the plain neighborhood read).
    let tc = chime::Chime::create(
        &pool,
        chime::ChimeConfig {
            hotspot_bytes: 0,
            speculative_read: false,
            ..Default::default()
        },
        0,
    );
    let ts = sherman::Sherman::create(&pool, sherman::ShermanConfig::default(), 1);
    let tm = smart::Smart::create(&pool, smart::SmartConfig::default(), 2);
    let cnc = tc.new_cn();
    let cns = ts.new_cn();
    let cnm = tm.new_cn();
    let mut cc = tc.client(&cnc);
    let mut cs = ts.client(&cns);
    let mut cm = tm.client(&cnm);
    for seq in 0..n {
        let k = KeySpace::key(seq);
        cc.insert(k, &[1u8; 8]).unwrap();
        cs.insert(k, &[1u8; 8]).unwrap();
        cm.insert(k, &[1u8; 8]).unwrap();
    }
    let probe = |c: &mut dyn RangeIndex| {
        // Warm pass, then measure.
        for s in 0..2_000u64 {
            c.search(KeySpace::key((s * 13) % n)).unwrap();
        }
        let b0 = c.stats().clone();
        for s in 0..2_000u64 {
            c.search(KeySpace::key((s * 7) % n)).unwrap();
        }
        let d = c.stats().since(&b0);
        d.wire_bytes as f64 / 2_000.0
    };
    let chime_b = probe(&mut cc);
    let sherman_b = probe(&mut cs);
    let smart_b = probe(&mut cm);
    assert!(
        smart_b < chime_b && chime_b < sherman_b,
        "amplification ordering violated: SMART {smart_b:.0} < CHIME {chime_b:.0} < Sherman {sherman_b:.0}"
    );
    // Sherman reads whole 64-entry nodes: ~5x CHIME's 8-entry neighborhoods.
    assert!(
        sherman_b / chime_b > 3.0,
        "Sherman/CHIME bytes ratio too small: {:.1}",
        sherman_b / chime_b
    );
}
