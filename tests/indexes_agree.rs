//! Model-equivalence tests: every index must agree with a `BTreeMap` under
//! randomized operation sequences (inserts, updates, deletes, searches and
//! scans).

use std::collections::BTreeMap;
use dmem::{Pool, RangeIndex};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn check_against_model(mut idx: Box<dyn RangeIndex>, seed: u64, preload: &[(u64, Vec<u8>)]) {
    let mut model: BTreeMap<u64, Vec<u8>> = preload.iter().cloned().collect();
    let mut rng = SmallRng::seed_from_u64(seed);
    let key_of = |r: &mut SmallRng| 1 + r.gen_range(0..4_000u64) * 3;
    for step in 0..3_000 {
        match rng.gen_range(0..100) {
            0..=39 => {
                let k = key_of(&mut rng);
                let v = vec![(step % 251) as u8; 8];
                idx.insert(k, &v).unwrap();
                model.insert(k, v);
            }
            40..=59 => {
                let k = key_of(&mut rng);
                let v = vec![(step % 199) as u8; 8];
                let in_idx = idx.update(k, &v).unwrap();
                let in_model = model.contains_key(&k);
                assert_eq!(in_idx, in_model, "update presence for {k} at step {step}");
                if in_model {
                    model.insert(k, v);
                }
            }
            60..=74 => {
                let k = key_of(&mut rng);
                let in_idx = idx.delete(k).unwrap();
                let in_model = model.remove(&k).is_some();
                assert_eq!(in_idx, in_model, "delete presence for {k} at step {step}");
            }
            75..=94 => {
                let k = key_of(&mut rng);
                assert_eq!(
                    idx.search(k),
                    model.get(&k).cloned(),
                    "search {k} at step {step}"
                );
            }
            _ => {
                let start = key_of(&mut rng);
                let n = rng.gen_range(1..40);
                let mut got = Vec::new();
                idx.scan(start, n, &mut got);
                let want: Vec<(u64, Vec<u8>)> = model
                    .range(start..)
                    .take(n)
                    .map(|(k, v)| (*k, v.clone()))
                    .collect();
                assert_eq!(got, want, "scan from {start} x{n} at step {step}");
            }
        }
    }
    // Final full sweep.
    for (k, v) in &model {
        assert_eq!(idx.search(*k).as_ref(), Some(v), "final sweep key {k}");
    }
}

fn preload_items(n: u64) -> Vec<(u64, Vec<u8>)> {
    (0..n).map(|i| (1 + i * 3, vec![7u8; 8])).collect()
}

#[test]
fn chime_matches_btreemap() {
    let pool = Pool::with_defaults(1, 512 << 20);
    let cfg = chime::ChimeConfig {
        span: 16,
        internal_span: 8,
        neighborhood: 4,
        ..Default::default()
    };
    let t = chime::Chime::create(&pool, cfg, 0);
    let cn = t.new_cn();
    let mut c = t.client(&cn);
    let pre = preload_items(2_000);
    for (k, v) in &pre {
        c.insert(*k, v).unwrap();
    }
    check_against_model(Box::new(c), 1, &pre);
}

#[test]
fn chime_baseline_matches_btreemap() {
    let pool = Pool::with_defaults(1, 512 << 20);
    let cfg = chime::ChimeConfig {
        span: 16,
        internal_span: 8,
        neighborhood: 4,
        ..chime::ChimeConfig::baseline()
    };
    let t = chime::Chime::create(&pool, cfg, 0);
    let cn = t.new_cn();
    let mut c = t.client(&cn);
    let pre = preload_items(2_000);
    for (k, v) in &pre {
        c.insert(*k, v).unwrap();
    }
    check_against_model(Box::new(c), 2, &pre);
}

#[test]
fn sherman_matches_btreemap() {
    let pool = Pool::with_defaults(1, 512 << 20);
    let cfg = sherman::ShermanConfig {
        span: 8,
        internal_span: 8,
        ..Default::default()
    };
    let t = sherman::Sherman::create(&pool, cfg, 0);
    let cn = t.new_cn();
    let mut c = t.client(&cn);
    let pre = preload_items(2_000);
    for (k, v) in &pre {
        c.insert(*k, v).unwrap();
    }
    check_against_model(Box::new(c), 3, &pre);
}

#[test]
fn smart_matches_btreemap() {
    let pool = Pool::with_defaults(1, 512 << 20);
    let t = smart::Smart::create(&pool, smart::SmartConfig::default(), 0);
    let cn = t.new_cn();
    let mut c = t.client(&cn);
    let pre = preload_items(2_000);
    for (k, v) in &pre {
        c.insert(*k, v).unwrap();
    }
    check_against_model(Box::new(c), 4, &pre);
}

#[test]
fn rolex_matches_btreemap() {
    let pool = Pool::with_defaults(1, 512 << 20);
    let pre = preload_items(2_000);
    let t = rolex::Rolex::create(&pool, rolex::RolexConfig::default(), &pre);
    let c = t.client();
    check_against_model(Box::new(c), 5, &pre);
}

#[test]
fn chime_learned_matches_btreemap() {
    let pool = Pool::with_defaults(1, 512 << 20);
    let pre = preload_items(2_000);
    let cfg = rolex::RolexConfig {
        hopscotch_leaves: true,
        ..Default::default()
    };
    let t = rolex::ChimeLearned::create(&pool, cfg, &pre);
    let c = t.client();
    check_against_model(Box::new(c), 6, &pre);
}
