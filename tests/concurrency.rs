//! Cross-crate concurrency tests: threads race through the shared memory
//! pool; committed writes must never be lost and readers must never observe
//! torn state (the three-level optimistic synchronization at work).


use dmem::{Pool, RangeIndex};

fn v(x: u64) -> Vec<u8> {
    x.to_le_bytes().to_vec()
}

/// Concurrent disjoint inserts: every committed key must be readable.
#[test]
fn chime_concurrent_inserts_none_lost() {
    let pool = Pool::with_defaults(1, 512 << 20);
    let cfg = chime::ChimeConfig {
        span: 16,
        internal_span: 8,
        neighborhood: 4,
        ..Default::default()
    };
    let t = chime::Chime::create(&pool, cfg, 0);
    let threads = 4u64;
    let per = 1_500u64;
    crossbeam::thread::scope(|s| {
        for tid in 0..threads {
            let t = t.clone();
            s.spawn(move |_| {
                let cn = t.new_cn();
                let mut c = t.client(&cn);
                for i in 0..per {
                    let k = 1 + i * threads + tid;
                    c.insert(k, &v(k)).unwrap();
                }
            });
        }
    })
    .unwrap();
    let cn = t.new_cn();
    let mut c = t.client(&cn);
    for k in 1..=(threads * per) {
        assert_eq!(c.search(k), Some(v(k)), "lost insert {k}");
    }
    let mut out = Vec::new();
    c.scan(1, (threads * per) as usize, &mut out);
    assert_eq!(out.len(), (threads * per) as usize, "scan missed keys");
}

/// Updates to per-thread counters must never be lost (write-write races go
/// through node locks).
#[test]
fn chime_concurrent_updates_not_lost() {
    let pool = Pool::with_defaults(1, 512 << 20);
    let cfg = chime::ChimeConfig {
        span: 16,
        internal_span: 8,
        neighborhood: 4,
        ..Default::default()
    };
    let t = chime::Chime::create(&pool, cfg, 0);
    let threads = 4u64;
    {
        let cn = t.new_cn();
        let mut c = t.client(&cn);
        for tid in 0..threads {
            c.insert(1000 + tid, &v(0)).unwrap();
        }
        // Background keys force splits during the update phase.
        for k in 1..=400u64 {
            c.insert(k, &v(k)).unwrap();
        }
    }
    let rounds = 300u64;
    crossbeam::thread::scope(|s| {
        for tid in 0..threads {
            let t = t.clone();
            s.spawn(move |_| {
                let cn = t.new_cn();
                let mut c = t.client(&cn);
                // Each thread owns one key and increments it; a lost update
                // would leave the final value below `rounds`.
                for i in 1..=rounds {
                    assert!(c.update(1000 + tid, &v(i)).unwrap());
                    // Interleave inserts to churn the tree.
                    c.insert(10_000 + tid * 10_000 + i, &v(i)).unwrap();
                }
            });
        }
    })
    .unwrap();
    let cn = t.new_cn();
    let mut c = t.client(&cn);
    for tid in 0..threads {
        assert_eq!(c.search(1000 + tid), Some(v(rounds)), "thread {tid}");
    }
}

/// Readers racing writers must always see *some* committed value of the
/// correct shape — never a torn mix (EV/bitmap checks).
#[test]
fn chime_readers_never_see_torn_values() {
    let pool = Pool::with_defaults(1, 512 << 20);
    let cfg = chime::ChimeConfig {
        span: 16,
        internal_span: 8,
        neighborhood: 4,
        value_size: 64, // large enough to straddle cache lines
        ..Default::default()
    };
    let t = chime::Chime::create(&pool, cfg, 0);
    {
        let cn = t.new_cn();
        let mut c = t.client(&cn);
        for k in 1..=200u64 {
            c.insert(k, &[1u8; 64]).unwrap();
        }
    }
    crossbeam::thread::scope(|s| {
        let tw = t.clone();
        s.spawn(move |_| {
            let cn = tw.new_cn();
            let mut c = tw.client(&cn);
            for i in 0..2_000u64 {
                let k = 1 + i % 200;
                let fill = (i % 255) as u8 + 1;
                c.update(k, &[fill; 64]).unwrap();
            }
        });
        for _ in 0..2 {
            let tr = t.clone();
            s.spawn(move |_| {
                let cn = tr.new_cn();
                let mut c = tr.client(&cn);
                for i in 0..3_000u64 {
                    let k = 1 + (i * 7) % 200;
                    let got = c.search(k).expect("preloaded key");
                    assert_eq!(got.len(), 64);
                    let first = got[0];
                    assert!(
                        got.iter().all(|&b| b == first),
                        "torn value for key {k}: {got:?}"
                    );
                }
            });
        }
    })
    .unwrap();
}

/// Sherman under the same torn-value test (two-level versions).
#[test]
fn sherman_readers_never_see_torn_values() {
    let pool = Pool::with_defaults(1, 512 << 20);
    let cfg = sherman::ShermanConfig {
        span: 8,
        internal_span: 8,
        value_size: 64,
        ..Default::default()
    };
    let t = sherman::Sherman::create(&pool, cfg, 0);
    {
        let cn = t.new_cn();
        let mut c = t.client(&cn);
        for k in 1..=200u64 {
            c.insert(k, &[1u8; 64]).unwrap();
        }
    }
    crossbeam::thread::scope(|s| {
        let tw = t.clone();
        s.spawn(move |_| {
            let cn = tw.new_cn();
            let mut c = tw.client(&cn);
            for i in 0..2_000u64 {
                c.update(1 + i % 200, &[(i % 255) as u8 + 1; 64]).unwrap();
            }
        });
        let tr = t.clone();
        s.spawn(move |_| {
            let cn = tr.new_cn();
            let mut c = tr.client(&cn);
            for i in 0..3_000u64 {
                let got = c.search(1 + (i * 7) % 200).expect("preloaded key");
                let first = got[0];
                assert!(got.iter().all(|&b| b == first), "torn value");
            }
        });
    })
    .unwrap();
}

/// SMART: concurrent structural changes (prefix splits, node growth) with
/// random keys; nothing lost.
#[test]
fn smart_concurrent_structural_changes() {
    let pool = Pool::with_defaults(1, 512 << 20);
    let t = smart::Smart::create(&pool, smart::SmartConfig::default(), 0);
    let threads = 4u64;
    let per = 600u64;
    crossbeam::thread::scope(|s| {
        for tid in 0..threads {
            let t = t.clone();
            s.spawn(move |_| {
                let cn = t.new_cn();
                let mut c = t.client(&cn);
                for i in 0..per {
                    let k = dmem::hash::mix64(1 + i * threads + tid);
                    c.insert(k, &v(k)).unwrap();
                }
            });
        }
    })
    .unwrap();
    let cn = t.new_cn();
    let mut c = t.client(&cn);
    for s in 1..=(threads * per) {
        let k = dmem::hash::mix64(s);
        assert_eq!(c.search(k), Some(v(k)), "lost insert seq {s}");
    }
}

/// ROLEX: concurrent synonym-chain inserts, nothing lost.
#[test]
fn rolex_concurrent_overflow_inserts() {
    let pool = Pool::with_defaults(1, 512 << 20);
    let pre: Vec<(u64, Vec<u8>)> = (1..=1_000u64).map(|k| (k * 5, v(k))).collect();
    let t = rolex::Rolex::create(&pool, rolex::RolexConfig::default(), &pre);
    let threads = 3u64;
    let per = 300u64;
    crossbeam::thread::scope(|s| {
        for tid in 0..threads {
            let t = t.clone();
            s.spawn(move |_| {
                let mut c = t.client();
                for i in 0..per {
                    let k = 1 + (i * threads + tid) * 5 + 1; // between loaded keys
                    c.insert(k, &v(k)).unwrap();
                }
            });
        }
    })
    .unwrap();
    let mut c = t.client();
    for i in 0..(threads * per) {
        let k = 1 + i * 5 + 1;
        assert_eq!(c.search(k), Some(v(k)), "lost overflow insert {k}");
    }
}
