//! End-to-end pipeline tests: the experiment driver runs every workload on
//! every index and the headline relationships of the paper hold at small
//! scale.

use bench::driver::{run, BenchSetup, IndexKind};
use ycsb::Workload;

fn setup(kind: IndexKind, w: Workload) -> BenchSetup {
    BenchSetup {
        kind,
        workload: w,
        num_cns: 2,
        clients: 16,
        preload: 8_000,
        ops: 6_000,
        mn_capacity: 512 << 20,
        ..Default::default()
    }
}

#[test]
fn every_index_runs_every_workload() {
    for w in Workload::ALL {
        let mut kinds = vec![
            IndexKind::Chime(chime::ChimeConfig::default()),
            IndexKind::Sherman(sherman::ShermanConfig::default()),
            IndexKind::Smart(smart::SmartConfig::default()),
        ];
        if w != Workload::Load {
            kinds.push(IndexKind::Rolex(rolex::RolexConfig::default()));
            kinds.push(IndexKind::Rolex(rolex::RolexConfig {
                hopscotch_leaves: true,
                ..Default::default()
            }));
        }
        for kind in kinds {
            let name = kind.name();
            let r = run(&setup(kind, w));
            assert!(r.mops > 0.0, "{name} {w:?}");
            assert!(r.p99_us >= r.p50_us, "{name} {w:?}");
            assert!(r.rtts_per_op > 0.0, "{name} {w:?}");
        }
    }
}

/// Fig. 12 YCSB C headline: CHIME reads far fewer bytes per search than the
/// KV-contiguous baselines, and needs far less cache than SMART.
#[test]
fn headline_relationships_ycsb_c() {
    let chime_r = run(&setup(IndexKind::Chime(chime::ChimeConfig::default()), Workload::C));
    let sherman_r = run(&setup(
        IndexKind::Sherman(sherman::ShermanConfig::default()),
        Workload::C,
    ));
    let rolex_r = run(&setup(IndexKind::Rolex(rolex::RolexConfig::default()), Workload::C));
    let smart_r = run(&setup(IndexKind::Smart(smart::SmartConfig::default()), Workload::C));
    // Read-amplification ordering (bytes per op).
    assert!(chime_r.bytes_per_op * 2.5 < sherman_r.bytes_per_op);
    assert!(chime_r.bytes_per_op * 2.5 < rolex_r.bytes_per_op);
    // Cache-consumption ordering.
    assert!(smart_r.cache_bytes > 3 * chime_r.cache_bytes);
    // Modeled throughput ordering at saturation-scale client counts.
    let sat = |kind| BenchSetup {
        clients: 320,
        num_cns: 8,
        ..setup(kind, Workload::C)
    };
    let chime_t = run(&sat(IndexKind::Chime(chime::ChimeConfig::default())));
    let sherman_t = run(&sat(IndexKind::Sherman(sherman::ShermanConfig::default())));
    assert!(
        chime_t.mops > 2.0 * sherman_t.mops,
        "CHIME {:.1} vs Sherman {:.1} Mops",
        chime_t.mops,
        sherman_t.mops
    );
}

/// The vacancy bitmap piggyback removes one RTT from every insert.
#[test]
fn piggyback_saves_an_insert_round_trip() {
    let with = run(&setup(
        IndexKind::Chime(chime::ChimeConfig::default()),
        Workload::Load,
    ));
    let without = run(&setup(
        IndexKind::Chime(chime::ChimeConfig {
            vacancy_piggyback: false,
            sibling_validation: false,
            ..Default::default()
        }),
        Workload::Load,
    ));
    // Without piggybacking inserts read whole nodes: more bytes, and the
    // modeled throughput drops.
    assert!(
        without.bytes_per_op > 1.3 * with.bytes_per_op,
        "no-piggyback {} vs piggyback {} B/op",
        without.bytes_per_op,
        with.bytes_per_op
    );
}

/// YCSB E: scans on the KV-discrete index cost many small reads; the
/// KV-contiguous indexes batch whole leaves.
#[test]
fn scans_favor_kv_contiguous_indexes() {
    let chime_r = run(&setup(IndexKind::Chime(chime::ChimeConfig::default()), Workload::E));
    let smart_r = run(&setup(IndexKind::Smart(smart::SmartConfig::default()), Workload::E));
    assert!(
        smart_r.msgs_per_op > 2.0 * chime_r.msgs_per_op,
        "SMART scans should need many more messages: {:.1} vs {:.1}",
        smart_r.msgs_per_op,
        chime_r.msgs_per_op
    );
}

/// Workload determinism: the same seed reproduces identical traffic.
#[test]
fn runs_are_deterministic() {
    let mk = || run(&setup(IndexKind::Chime(chime::ChimeConfig::default()), Workload::A));
    let a = mk();
    let b = mk();
    assert_eq!(a.rtts_per_op, b.rtts_per_op);
    assert_eq!(a.bytes_per_op, b.bytes_per_op);
    assert_eq!(a.mops, b.mops);
}
