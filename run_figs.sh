#!/bin/bash
# Regenerates every figure/table output into results/.
set -x
cd /root/repo
B=./target/release
$B/fig16 > results/fig16.txt 2>&1
$B/fig4 > results/fig4.txt 2>&1
$B/fig3 --preload 100000 --ops 40000 > results/fig3.txt 2>&1
$B/table1 --preload 100000 > results/table1.txt 2>&1
$B/fig14 --sizes 100000,200000,400000 > results/fig14.txt 2>&1
$B/fig15 --preload 100000 --ops 40000 > results/fig15.txt 2>&1
$B/fig17 --preload 100000 --ops 40000 > results/fig17.txt 2>&1
$B/fig19 --preload 100000 --ops 40000 > results/fig19.txt 2>&1
$B/fig13 --preload 100000 --ops 40000 > results/fig13.txt 2>&1
$B/fig18 --preload 100000 --ops 40000 > results/fig18.txt 2>&1
$B/fig12 --preload 150000 --ops 50000 > results/fig12.txt 2>&1
echo ALL_FIGURES_DONE
