#!/bin/bash
# Regenerates every figure/table output into results/: the human-readable
# table as results/<fig>.txt and the machine-readable BENCH_<fig>.json
# (emitted by each binary via BENCH_OUT_DIR). Fails loudly on the first
# nonzero exit instead of silently producing a partial results/ directory.
set -euo pipefail
cd "$(dirname "$0")"

B=./target/release
OUT=results
mkdir -p "$OUT"
# Drop stale outputs first: a figure removed from this script must not leave
# a ghost BENCH_*.json / TIMELINE_*.json (or .txt) behind for the gate or
# explain to trip on. baseline.json is the perf gate's reference and is
# refreshed by `make baseline`, not here.
rm -f "$OUT"/BENCH_*.json "$OUT"/TIMELINE_*.json "$OUT"/flightdump_*.json "$OUT"/*.txt
# A figure binary run outside this script (no BENCH_OUT_DIR) drops its JSON
# in the repo root; sweep those strays too so they can't shadow results/.
rm -f ./BENCH_*.json ./TIMELINE_*.json ./flightdump_*.json
export BENCH_OUT_DIR="$OUT"

run() {
  local name=$1
  shift
  echo "== $name $*"
  if ! "$B/$name" "$@" > "$OUT/$name.txt" 2>&1; then
    echo "FAILED: $name (see $OUT/$name.txt)" >&2
    tail -n 20 "$OUT/$name.txt" >&2
    exit 1
  fi
  if [ ! -s "$OUT/BENCH_$name.json" ]; then
    echo "FAILED: $name wrote no $OUT/BENCH_$name.json" >&2
    exit 1
  fi
}

run fig16
run fig4
run fig3 --preload 100000 --ops 40000
run table1 --preload 100000
run fig14 --sizes 100000,200000,400000
run fig15 --preload 100000 --ops 40000
run fig17 --preload 100000 --ops 40000
run fig19 --preload 100000 --ops 40000
run fig13 --preload 100000 --ops 40000
run fig18 --preload 100000 --ops 40000
run fig12 --preload 150000 --ops 50000
run fig_coroutines --preload 100000 --ops 40000
run fig_serve --conns 32 --workers 2 --requests 64
run fig_scaleout
echo ALL_FIGURES_DONE
