//! A shared key-value store: several compute nodes, many clients, a mixed
//! YCSB-style workload, and a report of the modeled system throughput.
//!
//! This mirrors the paper's deployment: 10 CNs x 64 clients share one CHIME
//! tree on the memory pool; each CN has a 100 MB-class cache (scaled) and a
//! hotspot buffer.
//!
//! Run with: `cargo run --release --example kv_store [-- --clients 320]`

use std::sync::Arc;

use chime::{Chime, ChimeConfig};
use dmem::{NetConfig, Pool, RangeIndex, RunAccounting};
use ycsb::{KeySpace, Op, OpGen, Workload, WorkloadState};

fn main() {
    let clients: usize = std::env::args()
        .skip_while(|a| a != "--clients")
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(320);
    let num_cns = 10;
    let preload = 100_000u64;
    let ops_per_client = 500u64;

    let pool = Pool::with_defaults(1, 1 << 30);
    let tree = Chime::create(&pool, ChimeConfig::default(), 0);

    // Preload.
    let loader_cn = tree.new_cn();
    let mut loader = tree.client(&loader_cn);
    for seq in 0..preload {
        loader.insert(KeySpace::key(seq), &[7u8; 8]).unwrap();
    }
    println!("loaded {preload} keys ({} MB remote)", pool.allocated_bytes() >> 20);

    // Run a YCSB-A mix from `clients` clients spread over the CNs, using
    // real threads (one per CN) so writers actually contend.
    let state = WorkloadState::new(preload);
    let cns: Vec<_> = (0..num_cns).map(|_| tree.new_cn()).collect();
    let per_cn = clients / num_cns;
    let totals = crossbeam::thread::scope(|s| {
        let mut handles = Vec::new();
        for (cn_id, cn) in cns.iter().enumerate() {
            let tree = tree.clone();
            let state = Arc::clone(&state);
            handles.push(s.spawn(move |_| {
                let mut sum = (0u64, 0u64, 0u64); // (msgs, wire, latency)
                for i in 0..per_cn {
                    let mut c = tree.client(cn);
                    let mut gen = OpGen::new(Workload::A, Arc::clone(&state), (cn_id * 1000 + i) as u64);
                    for _ in 0..ops_per_client {
                        match gen.next_op() {
                            Op::Read(k) => {
                                c.search(k);
                            }
                            Op::Update(k) => {
                                c.update(k, &[9u8; 8]).unwrap();
                            }
                            Op::Insert(k) => c.insert(k, &[9u8; 8]).unwrap(),
                            Op::Scan(k, n) => {
                                let mut out = Vec::new();
                                c.scan(k, n, &mut out);
                            }
                        }
                    }
                    let st = c.stats();
                    sum.0 += st.msgs;
                    sum.1 += st.wire_bytes;
                    sum.2 += c.clock_ns();
                }
                sum
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().unwrap())
            .fold((0, 0, 0), |a, b| (a.0 + b.0, a.1 + b.1, a.2 + b.2))
    })
    .unwrap();

    let ops = clients as u64 * ops_per_client;
    let est = NetConfig::default().model(&RunAccounting {
        ops,
        clients: clients as u64,
        mns: 1,
        total_msgs: totals.0,
        total_wire_bytes: totals.1,
        sum_latency_ns: totals.2,
        sum_busy_ns: 0,
        max_mn_msgs: 0,
        max_mn_wire_bytes: 0,
    });
    println!("\nYCSB A, {clients} clients on {num_cns} CNs:");
    println!("  modeled throughput : {:.2} Mops ({:?}-bound)", est.mops, est.bound);
    println!("  avg latency        : {:.1} us", est.avg_latency_ns / 1e3);
    println!("  traffic            : {:.0} B/op, {:.2} msgs/op", est.bytes_per_op, est.msgs_per_op);
    let (hits, lookups) = cns[0].hotspot_stats();
    if lookups > 0 {
        println!("  hotspot hit ratio  : {:.1}%", hits as f64 / lookups as f64 * 100.0);
    }
}
