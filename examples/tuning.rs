//! Tuning explorer: how span size and neighborhood size trade off read
//! amplification, space efficiency and compute-side cache consumption —
//! the §5.4 story, runnable on your own parameters.
//!
//! Run with: `cargo run --release --example tuning`

use chime::hopscotch::Window;
use chime::{Chime, ChimeConfig};
use dmem::hash::home_entry;
use dmem::{Pool, RangeIndex};
use ycsb::KeySpace;

fn main() {
    println!("## Neighborhood size H: load factor vs read size (span 64)\n");
    println!(
        "{:>4} {:>18} {:>22}",
        "H", "max load factor", "neighborhood bytes"
    );
    for h in [2usize, 4, 8, 16] {
        let lf = max_load_factor(64, h);
        let bytes = h * 19 + 10;
        println!("{h:>4} {lf:>18.3} {bytes:>22}");
    }
    println!("\n(The paper picks H = 8: ~88% load factor at a 162-byte read.)");

    println!("\n## Span size: cache consumption vs space efficiency\n");
    println!(
        "{:>6} {:>14} {:>16} {:>14}",
        "span", "cache (KB)", "remote (MB)", "amp bytes/op"
    );
    for span in [16usize, 64, 256] {
        let pool = Pool::with_defaults(1, 1 << 30);
        let cfg = ChimeConfig {
            span,
            cache_bytes: 1 << 30,
            hotspot_bytes: 0,
            speculative_read: false,
            ..Default::default()
        };
        let t = Chime::create(&pool, cfg, 0);
        let cn = t.new_cn();
        let mut c = t.client(&cn);
        let n = 60_000u64;
        for seq in 0..n {
            c.insert(KeySpace::key(seq), &[1u8; 8]).unwrap();
        }
        for seq in 0..n {
            c.search(KeySpace::key(seq)).unwrap();
        }
        let before = c.stats().clone();
        for seq in 0..5_000 {
            c.search(KeySpace::key(seq * 7 % n)).unwrap();
        }
        let d = c.stats().since(&before);
        println!(
            "{span:>6} {:>14.1} {:>16.1} {:>14.0}",
            c.cache_bytes() as f64 / 1024.0,
            pool.allocated_bytes() as f64 / (1 << 20) as f64,
            d.wire_bytes as f64 / 5_000.0
        );
    }
    println!("\n(Bigger spans shrink the cache but leave the per-search read");
    println!("untouched: CHIME reads neighborhoods, never whole nodes.)");
}

/// Mean achieved load factor of a single hopscotch table.
fn max_load_factor(span: usize, h: usize) -> f64 {
    let trials = 300;
    let mut total = 0.0;
    for t in 0..trials {
        let mut w = Window::new(span, h, 0, span);
        let mut n = 0;
        for i in 0.. {
            let key = dmem::hash::mix64((t * 7_919 + i) as u64) | 1;
            let home = home_entry(key, span);
            let Some(empty) = (0..span).map(|d| (home + d) % span).find(|&p| w.slot_empty(p))
            else {
                break;
            };
            if w.insert(key, vec![0u8; 8], empty).is_err() {
                break;
            }
            n += 1;
        }
        total += n as f64 / span as f64;
    }
    total / trials as f64
}
