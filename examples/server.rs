//! Quickstart: the serving front end, both ways.
//!
//! Run the deterministic simulated-socket mode (what CI gates):
//!
//! ```text
//! cargo run --release -p serve --example server
//! ```
//!
//! Run the real thing (two terminals):
//!
//! ```text
//! cargo run --release -p serve --bin chime-server -- --addr 127.0.0.1:7979
//! cargo run --release -p serve --bin chime-loadgen -- --addr 127.0.0.1:7979 --conns 8
//! ```
//!
//! Both are the same protocol, executor and admission code; only the
//! transport differs. The sim below also demonstrates that a rerun at the
//! same seed reproduces the metrics byte-for-byte.

use serve::{run_sim, OverloadPolicy, SimConfig};

fn main() {
    let cfg = SimConfig {
        seed: 7,
        conns: 16,
        workers: 2,
        requests_per_conn: 200,
        mean_gap_ns: 4_000,
        cq_watermark: 10,
        policy: OverloadPolicy::Shed,
        ..Default::default()
    };
    let rep = run_sim(&cfg);
    println!(
        "sim: conns={} served={} shed={} deferred={} refused={} throughput={:.3} Mops p99={} ns",
        rep.conns.len(),
        rep.served,
        rep.shed,
        rep.deferred,
        rep.conns_refused,
        rep.throughput_mops(),
        rep.hist.quantile(0.99),
    );

    // Determinism: the same seed reproduces the run byte-for-byte.
    let again = run_sim(&cfg);
    assert_eq!(
        rep.metrics.to_json(),
        again.metrics.to_json(),
        "same seed, same bytes"
    );
    println!("rerun at seed {} is byte-identical", cfg.seed);
}
