//! Range analytics: a scan-heavy scenario (time-ordered event log) showing
//! why a hybrid index keeps range queries cheap while point lookups stay
//! amplification-free.
//!
//! Events are keyed by `(timestamp << 20) | sequence`; dashboards run
//! windowed scans while ingest keeps appending.
//!
//! Run with: `cargo run --release --example range_analytics`

use chime::{Chime, ChimeConfig};
use dmem::{Pool, RangeIndex};

fn event_key(ts: u64, seq: u64) -> u64 {
    (ts << 20) | (seq & 0xFFFFF)
}

fn main() {
    let pool = Pool::with_defaults(1, 512 << 20);
    let tree = Chime::create(&pool, ChimeConfig::default(), 0);
    let cn = tree.new_cn();
    let mut ingest = tree.client(&cn);

    // Ingest 50k events over 1000 "seconds", ~50 per tick.
    let ticks = 1_000u64;
    let per_tick = 50u64;
    for ts in 1..=ticks {
        for seq in 0..per_tick {
            let k = event_key(ts, seq);
            // Value: 8-byte measurement.
            ingest.insert(k, &(ts * 100 + seq).to_le_bytes()).unwrap();
        }
    }
    println!(
        "ingested {} events ({} MB remote, {} node splits)",
        ticks * per_tick,
        pool.allocated_bytes() >> 20,
        ingest.counters.splits
    );

    // Dashboard: a 10-second sliding window aggregation.
    let mut dash = tree.client(&cn);
    let mut out = Vec::new();
    let mut total_events = 0usize;
    let before = dash.stats().clone();
    for window_start in (100..900u64).step_by(100) {
        out.clear();
        dash.scan(
            event_key(window_start, 0),
            (10 * per_tick) as usize,
            &mut out,
        );
        let sum: u64 = out
            .iter()
            .map(|(_, v)| u64::from_le_bytes(v[..8].try_into().unwrap()))
            .sum();
        println!(
            "window [{window_start}, {}): {} events, mean value {:.1}",
            window_start + 10,
            out.len(),
            sum as f64 / out.len().max(1) as f64
        );
        total_events += out.len();
    }
    let d = dash.stats().since(&before);
    println!(
        "\nscan efficiency: {:.1} round-trips and {:.0} wire bytes per window ({} events/window)",
        d.rtts as f64 / 8.0,
        d.wire_bytes as f64 / 8.0,
        total_events / 8
    );

    // Point probe: operators drill into single events without paying
    // whole-node reads.
    let before = dash.stats().clone();
    for ts in (100..900u64).step_by(8) {
        dash.search(event_key(ts, 7)).expect("event exists");
    }
    let d = dash.stats().since(&before);
    println!(
        "point-lookup efficiency: {:.2} round-trips, {:.0} bytes per lookup",
        d.rtts as f64 / 100.0,
        d.wire_bytes as f64 / 100.0
    );
}
