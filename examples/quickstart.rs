//! Quickstart: create a memory pool, build a CHIME tree, and run the basic
//! operations from one compute-node client.
//!
//! Run with: `cargo run --release --example quickstart`

use chime::{Chime, ChimeConfig};
use dmem::{Pool, RangeIndex};

fn main() {
    // 1. A disaggregated memory pool: one memory node with 256 MB.
    let pool = Pool::with_defaults(1, 256 << 20);

    // 2. A CHIME tree with the paper's defaults (span 64, neighborhood 8,
    //    all three techniques enabled), rooted at well-known slot 0.
    let tree = Chime::create(&pool, ChimeConfig::default(), 0);

    // 3. Per-compute-node state (internal-node cache + hotspot buffer) and
    //    one client. Every client issues one-sided verbs independently.
    let cn = tree.new_cn();
    let mut client = tree.client(&cn);

    // 4. Point operations.
    for k in 1..=10_000u64 {
        client.insert(k, &(k * 2).to_le_bytes()).unwrap();
    }
    let v = client.search(4_242).expect("key present");
    assert_eq!(u64::from_le_bytes(v.try_into().unwrap()), 8_484);
    client.update(4_242, &7u64.to_le_bytes()).unwrap();
    client.delete(9_999).unwrap();
    assert!(client.search(9_999).is_none());

    // 5. A range scan.
    let mut out = Vec::new();
    client.scan(100, 5, &mut out);
    println!("scan(100, 5):");
    for (k, v) in &out {
        println!(
            "  {k} -> {}",
            u64::from_le_bytes(v[..8].try_into().unwrap())
        );
    }

    // 6. Every remote access was counted: inspect the verb statistics.
    let s = client.stats();
    println!(
        "\nverb stats: {} reads, {} writes, {} atomics, {} round-trips",
        s.reads, s.writes, s.atomics, s.rtts
    );
    println!(
        "wire bytes: {} ({:.1} per op)",
        s.wire_bytes,
        s.wire_bytes as f64 / 10_007.0
    );
    println!("CN cache: {:.1} KB", client.cache_bytes() as f64 / 1024.0);
    println!("virtual time: {:.2} ms", client.clock_ns() as f64 / 1e6);
}
