//! Fault injection and crash-safe lock recovery.
//!
//! Builds a tree with lock leases enabled, kills one client at the
//! `leaf.lock.acquired` crash point (it dies holding a leaf lock), and shows
//! a surviving client reclaiming the stale lock and carrying on. Runs the
//! whole scenario twice to demonstrate seed-exact fault-trace replay.
//!
//! Run with: `cargo run --release --example fault_injection`

use std::panic::{self, AssertUnwindSafe};
use std::sync::Arc;

use chime::leaf::CRASH_LEAF_LOCKED;
use chime::{Chime, ChimeConfig};
use dmem::{
    CrashRule, CrashSignal, Endpoint, FaultAction, FaultPlan, FaultRule, FaultSession, Pool,
    RangeIndex, VerbKind,
};

fn scenario() -> (Vec<String>, String) {
    let pool = Pool::with_defaults(1, 256 << 20);
    let cfg = ChimeConfig {
        span: 16,
        internal_span: 8,
        neighborhood: 4,
        // A waiter that sees the same locked word 4 times in a row presumes
        // the holder dead and reclaims the lock by bumping the lease epoch.
        lock_lease_spins: 4,
        ..Default::default()
    };
    let tree = Chime::create(&pool, cfg, 0);

    // Fault plan: client 0 dies the 3rd time it wins a leaf lock; lock
    // CASes occasionally fail spuriously for everyone.
    let mut plan = FaultPlan::seeded(0xFA017);
    plan.crashes.push(CrashRule {
        label: CRASH_LEAF_LOCKED.to_string(),
        client: Some(0),
        at_hit: 3,
    });
    plan.rules.push(FaultRule {
        probability: 0.10,
        ..FaultRule::always("flaky-lock", Some(VerbKind::MaskedCas), FaultAction::FailCas)
    });
    let session = Arc::new(FaultSession::new(plan));

    let cn0 = tree.new_cn();
    let cn1 = tree.new_cn();
    let mut victim = tree.client_with_endpoint(
        &cn0,
        Endpoint::with_faults(Arc::clone(&pool), Arc::clone(&session), 0),
    );
    let mut survivor = tree.client_with_endpoint(
        &cn1,
        Endpoint::with_faults(Arc::clone(&pool), Arc::clone(&session), 1),
    );

    let mut log = Vec::new();
    // The victim inserts until the crash rule kills it mid-operation.
    let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
        for k in 1..=100u64 {
            victim.insert(k, &k.to_le_bytes()).unwrap();
        }
    }));
    match outcome {
        Err(p) => {
            let sig = p
                .downcast_ref::<CrashSignal>()
                .expect("only the crash rule panics here");
            log.push(format!(
                "victim died at crash point '{}' (client {})",
                sig.label, sig.client
            ));
        }
        Ok(()) => panic!("the crash rule should have fired"),
    }

    // The survivor now works over the same keys. Whenever it collides with
    // the leaf the victim locked and never released, the lease path kicks
    // in: after `lock_lease_spins` identical observations it CASes the lock
    // free (epoch bump) and proceeds.
    for k in 1..=100u64 {
        survivor.insert(k, &(k * 7).to_le_bytes()).unwrap();
    }
    for k in 1..=100u64 {
        assert_eq!(survivor.search(k).as_deref(), Some(&(k * 7).to_le_bytes()[..]));
    }
    let s = survivor.stats();
    log.push(format!(
        "survivor finished: stale_locks_reclaimed={} lock_retries={} op_retries={} faults_injected={}",
        s.stale_locks_reclaimed, s.lock_retries, s.op_retries, s.faults_injected,
    ));
    assert!(
        s.stale_locks_reclaimed >= 1,
        "the survivor must have reclaimed the victim's stale lock"
    );
    (log, session.trace_report())
}

fn main() {
    // Intentional CrashSignal panics should not spray backtraces.
    let default = panic::take_hook();
    panic::set_hook(Box::new(move |info| {
        if info.payload().downcast_ref::<CrashSignal>().is_none() {
            default(info);
        }
    }));

    let (log_a, trace_a) = scenario();
    for line in &log_a {
        println!("{line}");
    }
    println!("\nfault trace:\n{trace_a}");

    // Same plan, fresh pool: the verb-level fault trace replays exactly.
    let (_, trace_b) = scenario();
    assert_eq!(trace_a, trace_b, "same seed must replay the same trace");
    println!("deterministic replay: OK (second run produced an identical trace)");
}
