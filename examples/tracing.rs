//! Deterministic span tracing: where do an operation's round trips go?
//!
//! Runs a seeded Zipfian read-mostly workload with `trace_events` enabled,
//! then prints the five slowest spans with a per-verb breakdown (verb kind,
//! target memory node, wire bytes, modeled latency). Because every timestamp
//! comes from the virtual clock, the output is byte-identical across runs
//! and machines for the same seed.
//!
//! Run with: `cargo run --release --example tracing`

use std::collections::BTreeMap;

use chime::{Chime, ChimeConfig};
use dmem::{Pool, RangeIndex};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use ycsb::{KeySpace, Zipfian};

fn main() {
    let pool = Pool::with_defaults(2, 512 << 20);
    let cfg = ChimeConfig {
        // A small cache forces remote descents so spans carry real traffic.
        cache_bytes: 1 << 20,
        // Bound the per-client trace ring; oldest events drop first.
        trace_events: 1 << 16,
        ..Default::default()
    };
    let tree = Chime::create(&pool, cfg, 0);
    let cn = tree.new_cn();
    let mut c = tree.client(&cn);

    let n = 20_000u64;
    for seq in 0..n {
        c.insert(KeySpace::key(seq), &[1u8; 8]).unwrap();
    }

    // Measured phase: 95% Zipfian searches, 5% fresh inserts.
    let zipf = Zipfian::new(n, 0.99);
    let mut rng = SmallRng::seed_from_u64(42);
    for i in 0..5_000u64 {
        if i % 20 == 0 {
            c.insert(KeySpace::key(n + i), &[2u8; 8]).unwrap();
        } else {
            c.search(KeySpace::key(zipf.next(&mut rng))).unwrap();
        }
    }

    let tracer = c.take_tracer().expect("trace_events > 0 attaches a tracer");
    let mut spans = tracer.spans();
    println!(
        "{} events in the ring ({} dropped), {} spans",
        tracer.len(),
        tracer.dropped(),
        spans.len()
    );

    spans.sort_by_key(|s| std::cmp::Reverse(s.dur_ns()));
    println!("\ntop 5 slowest spans:");
    for s in spans.iter().take(5) {
        println!(
            "  {:>6} key={:<20} {:>7} ns  ok={} verbs={} wire={}B faults={}",
            s.op,
            s.key,
            s.dur_ns(),
            s.ok,
            s.verbs.len(),
            s.wire_bytes,
            s.faults
        );
        // Aggregate the span's verb events by (kind, memory node).
        let mut by_verb: BTreeMap<(&str, u16), (u64, u64, u64)> = BTreeMap::new();
        for v in &s.verbs {
            let e = by_verb.entry((v.verb, v.mn)).or_default();
            e.0 += 1;
            e.1 += v.wire_bytes;
            e.2 += v.dur_ns;
        }
        for ((verb, mn), (count, bytes, ns)) in by_verb {
            println!("      {count:>2}x {verb:<10} mn={mn}  {bytes:>6}B  {ns:>6} ns");
        }
    }

    // The full event stream exports as JSONL for offline analysis.
    let jsonl = tracer.to_jsonl();
    println!(
        "\nJSONL export: {} lines, {} bytes (first line below)",
        jsonl.lines().count(),
        jsonl.len()
    );
    if let Some(first) = jsonl.lines().next() {
        println!("{first}");
    }
}
