//! Timeline & Perfetto: the continuous-telemetry surface of one run.
//!
//! Runs a small seeded benchmark with two traced clients, then writes
//! `perfetto_trace.json` — a Chrome trace-event document you can load
//! straight into <https://ui.perfetto.dev> — and prints the windowed
//! throughput timeline plus any anomalies the in-run detector found.
//! Everything is on the virtual clock: the trace file is byte-identical
//! across runs and machines for the same seed.
//!
//! Run with: `cargo run --release --example perfetto`

use bench::driver::{run, BenchSetup, IndexKind};
use ycsb::Workload;

fn main() {
    let setup = BenchSetup {
        kind: IndexKind::Chime(chime::ChimeConfig::default()),
        num_cns: 2,
        num_mns: 2,
        clients: 16,
        preload: 20_000,
        ops: 20_000,
        mn_capacity: 512 << 20,
        workload: Workload::A,
        // Attach a causal tracer to the first two clients; the windowed
        // timeline below is collected for every client regardless.
        trace_clients: 2,
        seed: 42,
        ..Default::default()
    };
    let r = run(&setup);

    let doc = r.perfetto.expect("trace_clients > 0 exports Perfetto");
    std::fs::write("perfetto_trace.json", &doc).expect("write trace");
    println!(
        "wrote perfetto_trace.json ({} bytes) — open it in https://ui.perfetto.dev",
        doc.len()
    );

    println!(
        "\ntimeline: {} windows of {} us, {} ops total",
        r.timeline.len(),
        r.timeline.window_ns() / 1_000,
        r.timeline.total_ops()
    );
    println!("{:>8} {:>8} {:>12}", "window", "ops", "max lat (ns)");
    for (k, w) in r.timeline.windows() {
        println!("{k:>8} {:>8} {:>12}", w.ops, w.lat_max_ns);
    }

    if r.anomalies.is_empty() {
        println!("\nno anomalies detected (a quiet run should report none)");
    } else {
        println!("\nanomalies:");
        for a in &r.anomalies {
            println!("  {}", a.cite());
        }
    }
}
