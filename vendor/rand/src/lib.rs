//! Minimal stand-in for the `rand` 0.8 API surface this workspace uses.
//!
//! The build environment is fully offline, so the real crates.io crate cannot
//! be fetched. This shim provides `SmallRng` (an xoshiro256** generator),
//! `SeedableRng::seed_from_u64`, and the `Rng` methods `gen`, `gen_bool` and
//! `gen_range` over the integer/float ranges the workspace samples from.
//! Distribution quality matches the real crate closely enough for tests and
//! benchmarks; it is not a cryptographic generator.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dst` with random bytes.
    fn fill_bytes(&mut self, dst: &mut [u8]) {
        for chunk in dst.chunks_mut(8) {
            let w = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
    }
}

/// Generators that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (expanded via SplitMix64).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable from the "standard" distribution (`Rng::gen`).
pub trait StandardSample {
    /// Draws one value from `rng`.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u8 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as u8
    }
}

impl StandardSample for u16 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as u16
    }
}

impl StandardSample for u32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for usize {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types with uniform sampling over a half-open `[lo, hi)` interval.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws uniformly from `[lo, hi)`; `lo < hi` is checked by the caller.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;

    /// Draws uniformly from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u128;
                let draw = rng.next_u64() as u128 % span;
                (lo as i128 + draw as i128) as $t
            }

            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                let draw = rng.next_u64() as u128 % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + f64::standard_sample(rng) * (hi - lo)
    }

    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        Self::sample_half_open(rng, lo, hi)
    }
}

impl SampleUniform for f32 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + f32::standard_sample(rng) * (hi - lo)
    }

    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        Self::sample_half_open(rng, lo, hi)
    }
}

/// Range arguments accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty range");
        T::sample_inclusive(rng, lo, hi)
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Draws uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::standard_sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// SplitMix64 step, used for seed expansion.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (xoshiro256**).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // An all-zero state would be a fixed point; SplitMix64 cannot
            // produce four zero outputs in a row, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_by_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(5usize..=9);
            assert!((5..=9).contains(&w));
            let x = r.gen_range(0..100);
            assert!((0..100).contains(&x));
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
            let g = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&g));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = SmallRng::seed_from_u64(3);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }
}
