//! Minimal stand-in for the `proptest` API surface this workspace uses.
//!
//! The build environment is fully offline, so the real crates.io crate cannot
//! be fetched. This shim keeps the `proptest!` / `prop_assert*` programming
//! model: each generated `#[test]` runs N deterministic cases (seeded from
//! the test name and case index), drawing inputs from range / `any` / tuple /
//! collection strategies. There is no shrinking; a failing case reports its
//! case index and the formatted assertion message.

use std::ops::{Range, RangeInclusive};

/// Test-runner plumbing: config, RNG and the error type carried by
/// `prop_assert*` failures.
pub mod test_runner {
    /// Run configuration; only `cases` is honoured by this shim.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// Failure reported by a property body (via `prop_assert*` or `?`).
    #[derive(Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Creates a failure carrying `reason`.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError(reason.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Deterministic xoshiro256** generator used for input generation.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Creates a generator for one (test, case) pair.
        pub fn deterministic(name_hash: u64, case: u64) -> Self {
            let mut sm = name_hash ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let mut s = [0u64; 4];
            for w in &mut s {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                *w = z ^ (z >> 31);
            }
            if s == [0; 4] {
                s[0] = 1;
            }
            TestRng { s }
        }

        /// Returns the next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// Uniform draw from `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: u64) -> u64 {
            self.next_u64() % n
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// FNV-1a hash of a test name, used to derive per-test seeds.
#[doc(hidden)]
pub fn fnv(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Input-generation strategies.
pub mod strategy {
    use super::test_runner::TestRng;
    use super::{Range, RangeInclusive};

    /// A source of random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy_int {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let draw = (rng.next_u64() as u128 % span) as i128;
                    (self.start as i128 + draw) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    if span > u64::MAX as u128 {
                        return rng.next_u64() as $t;
                    }
                    let draw = (rng.next_u64() as u128 % span) as i128;
                    (lo as i128 + draw) as $t
                }
            }
        )*};
    }

    impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($n:ident . $i:tt),+))*) => {$(
            impl<$($n: Strategy),+> Strategy for ($($n,)+) {
                type Value = ($($n::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$i.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
    }
}

/// The `any::<T>()` strategy over a type's full value space.
pub mod arbitrary {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary {
        /// Draws one value from the full value space.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.unit_f64()
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    /// Full-value-space strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// Collection strategies (`vec`, `hash_set`, `btree_set`).
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::collections::{BTreeSet, HashSet};
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// Vector of values from `elem`, with length in `size`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = pick_len(&self.size, rng);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// Strategy for `HashSet<S::Value>` with a target size drawn from `size`.
    pub struct HashSetStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// Hash set of values from `elem`, with size in `size` (best effort when
    /// the element space is small).
    pub fn hash_set<S>(elem: S, size: Range<usize>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: std::hash::Hash + Eq,
    {
        HashSetStrategy { elem, size }
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: std::hash::Hash + Eq,
    {
        type Value = HashSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let target = pick_len(&self.size, rng);
            let mut out = HashSet::new();
            let mut attempts = 0usize;
            while out.len() < target && attempts < target * 50 + 500 {
                out.insert(self.elem.generate(rng));
                attempts += 1;
            }
            out
        }
    }

    /// Strategy for `BTreeSet<S::Value>` with a target size drawn from `size`.
    pub struct BTreeSetStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// Ordered set of values from `elem`, with size in `size` (best effort
    /// when the element space is small).
    pub fn btree_set<S>(elem: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { elem, size }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = pick_len(&self.size, rng);
            let mut out = BTreeSet::new();
            let mut attempts = 0usize;
            while out.len() < target && attempts < target * 50 + 500 {
                out.insert(self.elem.generate(rng));
                attempts += 1;
            }
            out
        }
    }

    fn pick_len(size: &Range<usize>, rng: &mut TestRng) -> usize {
        assert!(size.start < size.end, "empty size range");
        size.start + rng.below((size.end - size.start) as u64) as usize
    }
}

/// Common imports for property tests.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::test_runner::Config::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr;
     $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
     )*
    ) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                let __cfg: $crate::test_runner::Config = $cfg;
                for __case in 0..__cfg.cases {
                    let mut __rng = $crate::test_runner::TestRng::deterministic(
                        $crate::fnv(concat!(module_path!(), "::", stringify!($name))),
                        __case as u64,
                    );
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                    )+
                    let __res: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body;
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(__e) = __res {
                        panic!(
                            "property `{}` failed at case {}: {}",
                            stringify!($name),
                            __case,
                            __e
                        );
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a property body, failing the case (not
/// panicking directly) so the runner can report the case index.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts two expressions are equal inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let __a = &$a;
        let __b = &$b;
        $crate::prop_assert!(
            *__a == *__b,
            "assertion failed: `{:?}` == `{:?}`",
            __a,
            __b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let __a = &$a;
        let __b = &$b;
        $crate::prop_assert!(*__a == *__b, $($fmt)+);
    }};
}

/// Asserts two expressions are not equal inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let __a = &$a;
        let __b = &$b;
        $crate::prop_assert!(
            *__a != *__b,
            "assertion failed: `{:?}` != `{:?}`",
            __a,
            __b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let __a = &$a;
        let __b = &$b;
        $crate::prop_assert!(*__a != *__b, $($fmt)+);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        fn ranges_in_bounds(x in 10u64..20, y in 0usize..5, f in 0.25f64..0.75) {
            prop_assert!((10..20).contains(&x));
            prop_assert!(y < 5);
            prop_assert!((0.25..0.75).contains(&f));
        }

        fn vec_sizes(v in crate::collection::vec(any::<u8>(), 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
        }

        fn sets_respect_bounds(
            s in crate::collection::btree_set(1u64..1_000_000, 1..40),
            h in crate::collection::hash_set(any::<u64>(), 1..10),
        ) {
            prop_assert!(s.len() < 40);
            prop_assert!(h.len() < 10);
            prop_assert!(!s.contains(&0));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(3))]
        fn config_is_honoured(pair in (any::<u64>(), any::<bool>())) {
            let (_n, _b) = pair;
            prop_assert_eq!(1 + 1, 2);
            prop_assert_ne!(1, 2);
        }
    }

    #[test]
    fn determinism_across_runs() {
        use crate::strategy::Strategy;
        let strat = 0u64..1_000_000;
        let mut a = crate::test_runner::TestRng::deterministic(crate::fnv("x"), 7);
        let mut b = crate::test_runner::TestRng::deterministic(crate::fnv("x"), 7);
        for _ in 0..50 {
            assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
        }
    }

    #[test]
    fn prop_assert_failure_reports_case() {
        fn body(v: u64) -> Result<(), TestCaseError> {
            prop_assert!(v < 10, "v too big: {v}");
            Ok(())
        }
        assert!(body(5).is_ok());
        let err = body(50).unwrap_err();
        assert!(format!("{err}").contains("v too big"));
    }
}
