//! Minimal stand-in for the `crossbeam` scoped-thread API this workspace uses.
//!
//! The build environment is fully offline, so the real crates.io crate cannot
//! be fetched. Scoped threads are delegated to `std::thread::scope` (stable
//! since Rust 1.63), wrapped in the `crossbeam::thread::scope(|s| ...)`
//! calling convention where spawned closures receive a scope argument.

/// Scoped threads (`crossbeam::thread::scope`).
pub mod thread {
    use std::any::Any;

    pub use std::thread::ScopedJoinHandle;

    /// Scope handle passed to the `scope` closure; lets it spawn threads that
    /// may borrow from the enclosing stack frame.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Argument passed to closures spawned via [`Scope::spawn`].
    ///
    /// The real crossbeam passes a nested `&Scope` here; every call site in
    /// this workspace ignores it (`|_| ...`), so a zero-sized token suffices.
    #[derive(Clone, Copy, Debug)]
    pub struct NestedScope;

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; the closure receives a scope token.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(NestedScope) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            self.inner.spawn(move || f(NestedScope))
        }
    }

    /// Creates a scope for spawning threads that borrow from the caller.
    ///
    /// All spawned threads are joined before this returns. Unlike real
    /// crossbeam, a panicking child propagates its panic out of `scope`
    /// (via `std::thread::scope`) instead of surfacing as `Err`; callers
    /// here immediately `.unwrap()` the result, so both fail the same way.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_borrow_stack() {
        let counter = AtomicUsize::new(0);
        let total = super::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    s.spawn(|_| {
                        counter.fetch_add(1, Ordering::Relaxed);
                        1usize
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<usize>()
        })
        .unwrap();
        assert_eq!(total, 4);
        assert_eq!(counter.load(Ordering::Relaxed), 4);
    }
}
