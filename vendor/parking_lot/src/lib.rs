//! Minimal stand-in for the `parking_lot` API surface this workspace uses.
//!
//! The build environment is fully offline, so the real crates.io crate
//! cannot be fetched. This shim wraps `std::sync` primitives behind the
//! (panic-free, non-poisoning) `parking_lot` interface: `Mutex::lock`
//! returns a guard directly and `Condvar::wait` takes `&mut MutexGuard`.

use std::ops::{Deref, DerefMut};

/// A non-poisoning mutex with the `parking_lot` calling convention.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(
            self.0.lock().unwrap_or_else(|e| e.into_inner()),
        ))
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard(Some(e.into_inner()))),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

/// RAII guard returned by [`Mutex::lock`].
///
/// The inner `Option` exists so [`Condvar::wait`] can temporarily take the
/// std guard by value; it is `Some` at all times outside that method.
pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard taken")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard taken")
    }
}

/// A condition variable with the `parking_lot` calling convention.
#[derive(Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Blocks until notified, releasing the guard's mutex while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard taken");
        let inner = self.0.wait(inner).unwrap_or_else(|e| e.into_inner());
        guard.0 = Some(inner);
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

/// A non-poisoning reader-writer lock (API subset).
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        *pair.0.lock() = true;
        pair.1.notify_all();
        t.join().unwrap();
    }
}
