//! Minimal stand-in for the `criterion` benchmark API this workspace uses.
//!
//! The build environment is fully offline, so the real crates.io crate cannot
//! be fetched. This shim keeps the `criterion_group!`/`criterion_main!`
//! programming model and reports a simple mean ns/iter per benchmark. When
//! the binary is run without `--bench` (e.g. by `cargo test`, which executes
//! `harness = false` bench targets), benchmarks are skipped so test runs stay
//! fast.

use std::time::{Duration, Instant};

/// Benchmark driver; collects configuration and runs benchmark groups.
pub struct Criterion {
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement_time: Duration::from_millis(200),
            warm_up_time: Duration::from_millis(50),
        }
    }
}

impl Criterion {
    /// Sets the per-benchmark measurement budget.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t.min(Duration::from_secs(2));
        self
    }

    /// Sets the per-benchmark warm-up budget.
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t.min(Duration::from_millis(200));
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: &str, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(self.warm_up_time, self.measurement_time, id, f);
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count (accepted for API parity; the shim's timing
    /// budget is fixed, so this is a no-op).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: &str, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_bench(
            self.criterion.warm_up_time,
            self.criterion.measurement_time,
            &full,
            f,
        );
    }

    /// Finishes the group (no-op in this shim).
    pub fn finish(self) {}
}

fn run_bench<F>(warm_up: Duration, measure: Duration, id: &str, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        iters: 0,
        elapsed: Duration::ZERO,
        budget: warm_up,
    };
    f(&mut b);
    let mut b = Bencher {
        iters: 0,
        elapsed: Duration::ZERO,
        budget: measure,
    };
    f(&mut b);
    let per_iter = if b.iters > 0 {
        b.elapsed.as_nanos() as f64 / b.iters as f64
    } else {
        f64::NAN
    };
    println!("{id:<50} {per_iter:>12.1} ns/iter ({} iters)", b.iters);
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
    budget: Duration,
}

impl Bencher {
    /// Times `routine` repeatedly until the budget is spent.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        loop {
            let t0 = Instant::now();
            std::hint::black_box(routine());
            self.elapsed += t0.elapsed();
            self.iters += 1;
            if start.elapsed() >= self.budget {
                break;
            }
        }
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let start = Instant::now();
        loop {
            let input = setup();
            let t0 = Instant::now();
            std::hint::black_box(routine(input));
            self.elapsed += t0.elapsed();
            self.iters += 1;
            if start.elapsed() >= self.budget {
                break;
            }
        }
    }
}

/// Batch sizing hint (ignored by this shim).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Prevents the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Returns `true` when the binary was invoked as a real benchmark run
/// (`cargo bench` passes `--bench`); `cargo test` runs skip the benches.
#[doc(hidden)]
pub fn should_run_benches() -> bool {
    std::env::args().any(|a| a == "--bench")
}

/// Declares a benchmark group function from a config and target list.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            if !$crate::should_run_benches() {
                println!("benchmarks skipped (pass --bench, e.g. via `cargo bench`, to run)");
                return;
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_loop_counts_iters() {
        let mut c = Criterion::default()
            .measurement_time(Duration::from_millis(5))
            .warm_up_time(Duration::from_millis(1));
        let mut g = c.benchmark_group("shim");
        g.bench_function("add", |b| b.iter(|| 1u64 + 1));
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }
}
